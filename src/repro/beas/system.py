"""The BEAS system facade.

Ties the architecture of Fig. 1 together over one database:

1. given an SQL query Q, the **BE Checker** decides whether Q is covered
   by the registered access schema; if so
2. the **BE Plan Generator** emits a bounded plan and the **BE Plan
   Executor** computes exact answers within the deduced bound;
3. otherwise the **BE Plan Optimizer** looks for a partially bounded plan,
   falling back to the host DBMS (the conventional engine) when none
   helps. With an explicit tuple budget, covered-but-over-budget queries
   can instead take the resource-bounded approximation route.

Typical use::

    beas = BEAS(database)
    beas.register(AccessConstraint("call", ["pnum", "date"],
                                   ["recnum", "region"], 500))
    result = beas.execute("SELECT ...")
    print(result.mode, result.rows)
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import threading
import warnings
import weakref
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.beas.session import Session
    from repro.distributed.fleet import FleetStats, ReplicaFleet
    from repro.serving.async_server import AsyncBEASServer
    from repro.serving.prepared import PreparedQuery
    from repro.serving.server import BEASServer

from repro import config
from repro.access.catalog import ASCatalog
from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.errors import BEASDeprecationWarning, BEASError, BudgetExceededError
from repro.sql import ast
from repro.storage.database import Database
from repro.storage.mmapstore import MmapStore, StorageStats
from repro.engine.columnar import resolve_executor_mode, resolve_rows_per_batch
from repro.engine.executor import ConventionalEngine
from repro.engine.pool import (
    EnginePool,
    PoolStats,
    resolve_dispatch,
    resolve_parallelism,
)
from repro.engine.profiles import EngineProfile, POSTGRESQL
from repro.bounded.analyzer import PerformanceAnalysis, PerformanceAnalyzer
from repro.bounded.approximation import BoundedApproximator
from repro.bounded.coverage import BoundedEvaluabilityChecker, CoverageDecision
from repro.bounded.executor import BoundedPlanExecutor
from repro.bounded.optimizer import BEPlanOptimizer
from repro.bounded.plan import BoundedPlan, explain_plan
from repro.beas.result import BEASResult, ExecutionMode


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"BEAS.{old} is deprecated; use {new} — see docs/api.md for the "
        "Session/Query/Decision/Result lifecycle and migration table",
        BEASDeprecationWarning,
        stacklevel=3,
    )


class BEAS:
    """Bounded EvAluation of SQL — the full prototype."""

    def __init__(
        self,
        database: Database,
        access_schema: Optional[AccessSchema] = None,
        *,
        host_profile: EngineProfile = POSTGRESQL,
        require_exact_multiplicities: bool = False,
        dedup_keys: bool = False,
        executor: Optional[str] = None,
        rows_per_batch: Optional[int] = None,
        parallelism: Optional[int] = None,
        parallel_dispatch: Optional[str] = None,
        storage: Optional[str] = None,
        storage_dir: Optional[str] = None,
        replicas: Optional[int] = None,
        fleet_port_base: Optional[int] = None,
    ):
        """``executor`` selects the bounded pipeline's execution mode:
        ``"row"`` (tuple-at-a-time, the default) or ``"columnar"``
        (vectorised batches, see :mod:`repro.engine.columnar`); ``None``
        defers to the ``BEAS_EXECUTOR`` environment variable. Both modes
        return identical answers — the choice only trades execution
        strategy. ``rows_per_batch`` sizes columnar batches.

        ``parallelism`` sets the bounded pipeline's worker-process count
        (:class:`~repro.engine.pool.EnginePool`): ``1`` is in-process,
        ``>= 2`` executes bounded plans and column batches on worker
        processes; ``None`` defers to ``BEAS_PARALLELISM``, then to the
        host profile's ``parallelism``. ``parallel_dispatch`` picks the
        fan-out unit (``"plan"``, ``"batch"``, or the default
        ``"auto"``). Pooled answers are identical to in-process ones —
        the pool only escapes the GIL; any pool failure falls back to
        in-process execution. All engine options are validated here and
        raise :class:`~repro.errors.BEASError` when invalid.

        ``storage`` selects the storage engine: ``"memory"`` (the
        default, process-local) or ``"mmap"``
        (:class:`~repro.storage.mmapstore.MmapStore`: persisted index
        segments, a write-ahead maintenance log, result-cache
        persistence, and shared-memory pool snapshots); ``None`` defers
        to ``BEAS_STORAGE``. ``storage_dir`` names the store directory
        (``BEAS_STORAGE_DIR``); without one, an ``mmap`` instance owns a
        temporary directory removed when it is collected — useful for
        the shm snapshot wire, but obviously not a warm restart.

        ``replicas`` sets the distributed serving tier's replica count
        (:class:`~repro.distributed.fleet.ReplicaFleet`): ``1`` (the
        default) serves in-process, ``>= 2`` spawns socket-connected
        read replicas that each hold a shard of the access indices and
        answer covered bounded queries locally under version-vector
        consistency; ``None`` defers to ``BEAS_REPLICAS``.
        ``fleet_port_base`` is the first replica's loopback TCP port
        (``BEAS_FLEET_PORT_BASE``). Fleet answers are identical to
        in-process ones; any fleet failure falls back in-process."""
        self.database = database
        self.host_profile = host_profile
        self.storage = (
            config.validate_storage(storage)
            if storage is not None
            else (config.env_storage() or "memory")
        )
        self._store: Optional[MmapStore] = None
        self.storage_dir: Optional[str] = None
        if self.storage == "mmap":
            directory = (
                config.validate_storage_dir(storage_dir)
                if storage_dir is not None
                else config.env_storage_dir()
            )
            if directory is None:
                directory = tempfile.mkdtemp(prefix="beas-store-")
                weakref.finalize(
                    self, shutil.rmtree, directory, ignore_errors=True
                )
            self.storage_dir = directory
            store = MmapStore(directory)
            weakref.finalize(self, MmapStore.close, store)
            self._store = store
            # warm path: install persisted segments into a fresh catalog
            # and replay the WAL tail; any mismatch (different dataset,
            # different schema, corruption) cold-rebuilds and checkpoints
            catalog = ASCatalog(database)
            if access_schema is not None:
                catalog.schema = AccessSchema(name=access_schema.name)
            if store.try_load(catalog, access_schema):
                self.catalog = catalog
            else:
                self.catalog = ASCatalog(database, access_schema)
                store.checkpoint(self.catalog)
        else:
            if storage_dir is not None:
                raise BEASError(
                    "storage_dir requires the mmap storage engine "
                    "(storage='mmap' or BEAS_STORAGE=mmap)"
                )
            self.catalog = ASCatalog(database, access_schema)
        self._require_exact = require_exact_multiplicities
        self._dedup_keys = dedup_keys
        self.executor = resolve_executor_mode(executor)
        # resolved (and validated) eagerly: a bad size fails construction
        # with a clear BEASError, and every executor this instance builds
        # later shares one pinned batch size even if the environment
        # default changes afterwards
        self._rows_per_batch = resolve_rows_per_batch(rows_per_batch)
        self.parallelism = resolve_parallelism(
            parallelism, default=host_profile.parallelism
        )
        self._parallel_dispatch = resolve_dispatch(parallel_dispatch)
        self._pool: Optional[EnginePool] = None
        self._pool_lock = threading.Lock()
        self._pool_spawn_error: Optional[BaseException] = None
        self.replicas = (
            config.validate_replicas(replicas)
            if replicas is not None
            else (config.env_replicas() or 1)
        )
        self.fleet_port_base = (
            config.validate_fleet_port_base(fleet_port_base)
            if fleet_port_base is not None
            else (
                config.env_fleet_port_base()
                or config.DEFAULT_FLEET_PORT_BASE
            )
        )
        self._fleet: Optional["ReplicaFleet"] = None
        self._fleet_lock = threading.Lock()
        self._fleet_spawn_error: Optional[BaseException] = None
        self._checker_runs_base = 0
        self._host = ConventionalEngine(database, host_profile)
        self._host_engines: dict[str, ConventionalEngine] = {
            host_profile.name: self._host
        }
        self._server: Optional["BEASServer"] = None
        self._serve_lock = threading.Lock()
        self._refresh_components()

    def _refresh_components(self) -> None:
        """Rebuild planner-side objects after the access schema changes."""
        previous = getattr(self, "_checker", None)
        if previous is not None:
            # keep the lifetime run counter monotonic across rebuilds
            self._checker_runs_base += previous.check_count
        self._checker = BoundedEvaluabilityChecker(
            self.database.schema,
            self.catalog.schema,
            require_exact_multiplicities=self._require_exact,
        )
        self._executors = {
            self.executor: BoundedPlanExecutor(
                self.catalog,
                dedup_keys=self._dedup_keys,
                executor=self.executor,
                rows_per_batch=self._rows_per_batch,
                pool=self._pool_provider,
                dispatch=self._parallel_dispatch,
                fleet=self._fleet_provider,
            )
        }
        self._executor = self._executors[self.executor]
        self._optimizer = BEPlanOptimizer(
            self.catalog,
            self.host_profile,
            dedup_keys=self._dedup_keys,
            executor=self.executor,
            rows_per_batch=self._rows_per_batch,
            pool=self._pool_provider,
            dispatch=self._parallel_dispatch,
        )
        self._approximator = BoundedApproximator(self.catalog)

    # ------------------------------------------------------------------ #
    # the engine pool (parallel bounded execution)
    # ------------------------------------------------------------------ #
    def _pool_provider(self) -> Optional[EnginePool]:
        """The shared worker pool, created on first pooled execution.

        Lazy so that the (many) BEAS instances that never execute a
        bounded plan in parallel don't fork worker processes; ``None``
        when ``parallelism`` keeps execution in-process.
        """
        if self.parallelism < 2:
            return None
        pool = self._pool
        if pool is None or pool.closed:
            with self._pool_lock:
                if self._pool_spawn_error is not None:
                    # a previous spawn failed (fork refused, pipe limits,
                    # …): stay in-process instead of re-forking on every
                    # execution — answers are never wrong, only slower
                    return None
                pool = self._pool
                if pool is None or pool.closed:
                    try:
                        exporter = (
                            self._store.snapshot_exporter(self.catalog)
                            if self._store is not None
                            else None
                        )
                        pool = EnginePool(
                            self.parallelism, snapshot_exporter=exporter
                        )
                    except Exception as error:  # beaslint: ok(except-discipline) - any spawn failure (fork limits, pickling, OS) degrades to in-process execution
                        self._pool_spawn_error = error
                        self._pool = None
                        return None
                    self._pool = pool
                    # workers are daemonic, but close deterministically
                    # when this BEAS is collected (test suites build many)
                    weakref.finalize(self, EnginePool.close, pool)
        return pool

    @property
    def pool(self) -> Optional[EnginePool]:
        """The engine pool, if one has been started (inspection only —
        executions start it on demand)."""
        return self._pool

    def pool_stats(self) -> Optional[PoolStats]:
        pool = self._pool
        return pool.stats() if pool is not None and not pool.closed else None

    # ------------------------------------------------------------------ #
    # the serving fleet (distributed read replicas)
    # ------------------------------------------------------------------ #
    def _fleet_provider(self) -> Optional["ReplicaFleet"]:
        """The serving fleet, spawned on first covered bounded execute.

        Lazy for the same reason as :meth:`_pool_provider`; ``None``
        when ``replicas`` keeps serving in-process, or after a spawn
        failure (the coordinator keeps answering locally — answers are
        never wrong, only local).
        """
        if self.replicas < 2:
            return None
        fleet = self._fleet
        if fleet is None or fleet.closed:
            with self._fleet_lock:
                if self._fleet_spawn_error is not None:
                    return None
                fleet = self._fleet
                if fleet is None or fleet.closed:
                    from repro.distributed.fleet import ReplicaFleet

                    try:
                        fleet = ReplicaFleet(
                            self.catalog,
                            replicas=self.replicas,
                            port_base=self.fleet_port_base,
                        )
                    except Exception as error:  # beaslint: ok(except-discipline) - any spawn failure (fork limits, ports in use, OS) degrades to coordinator-local serving
                        self._fleet_spawn_error = error
                        self._fleet = None
                        return None
                    self._fleet = fleet
                    # replicas are daemonic, but close deterministically
                    # when this BEAS is collected (test suites build many)
                    weakref.finalize(self, ReplicaFleet.close, fleet)
        return fleet

    @property
    def fleet(self) -> Optional["ReplicaFleet"]:
        """The serving fleet, if one has been spawned (inspection only —
        executions spawn it on demand)."""
        return self._fleet

    def fleet_stats(self) -> Optional["FleetStats"]:
        fleet = self._fleet
        return (
            fleet.stats() if fleet is not None and not fleet.closed else None
        )

    def _fleet_for_maintenance(self) -> Optional["ReplicaFleet"]:
        """The live fleet, or ``None`` — maintenance only *notifies* an
        already-spawned fleet (its delta tail); it never spawns one."""
        fleet = self._fleet
        if fleet is None or fleet.closed:
            return None
        return fleet

    @property
    def store(self) -> Optional[MmapStore]:
        """The persistent store (``None`` under the memory engine)."""
        return self._store

    def storage_stats(self) -> Optional[StorageStats]:
        return self._store.stats() if self._store is not None else None

    @property
    def checker_runs(self) -> int:
        """Lifetime count of full BE Checker runs (parse/normalize +
        plan search) this instance has performed, across access-schema
        changes. The rebinding differential suite asserts that
        equal-arity plan rebinds never increase it."""
        return self._checker_runs_base + self._checker.check_count

    def close(self) -> None:
        """Shut down the engine pool's worker processes (idempotent).

        Safe to call any number of times, including when the lazy pool
        spawn previously failed (``_pool_provider`` recorded the error
        and fell back in-process) — ``with BEAS(...)`` blocks must exit
        cleanly even after an environment-level fork failure.

        Subsequent pooled executions transparently restart the pool; the
        workers are daemonic either way, so an unclosed BEAS cannot
        outlive the interpreter.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_spawn_error = None  # a later restart may retry
        if pool is not None:
            try:
                pool.close()
            # beaslint: ok(except-discipline) - half-spawned pool: close() is best effort on shutdown
            except Exception:  # pragma: no cover - half-spawned pool
                pass
        with self._fleet_lock:
            fleet, self._fleet = self._fleet, None
            self._fleet_spawn_error = None  # a later restart may retry
        if fleet is not None:
            try:
                fleet.close()
            # beaslint: ok(except-discipline) - half-spawned fleet: close() is best effort on shutdown
            except Exception:  # pragma: no cover - half-spawned fleet
                pass
        if self._store is not None:
            server = self._server
            if server is not None:
                try:
                    server.persist_result_cache()
                # beaslint: ok(except-discipline) - cache persistence is best effort on shutdown; the store stays valid without it
                except Exception:  # pragma: no cover - defensive
                    pass
            self._store.close()

    def __enter__(self) -> "BEAS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def bounded_executor(self, executor: Optional[str] = None) -> BoundedPlanExecutor:
        """The BE Plan Executor for one mode (instances are memoised).

        With ``executor=None`` the instance default applies. The serving
        layer uses this to honour a per-query mode override.
        """
        mode = self.executor if executor is None else resolve_executor_mode(executor)
        engine = self._executors.get(mode)
        if engine is None:
            engine = BoundedPlanExecutor(
                self.catalog,
                dedup_keys=self._dedup_keys,
                executor=mode,
                rows_per_batch=self._rows_per_batch,
                pool=self._pool_provider,
                dispatch=self._parallel_dispatch,
                fleet=self._fleet_provider,
            )
            self._executors[mode] = engine
        return engine

    #: How each learned route maps onto an executor build:
    #: (executor mode, pooled?, pinned dispatch).
    _ROUTE_SPECS = {
        "row": ("row", False, "auto"),
        "columnar": ("columnar", False, "auto"),
        "pooled-plan": ("columnar", True, "plan"),
        "pooled-batch": ("columnar", True, "batch"),
    }

    def routed_executor(self, route: str) -> BoundedPlanExecutor:
        """The BE Plan Executor for one learned *route* (memoised).

        Unlike :meth:`bounded_executor`, a route pins the whole engine
        shape — the pooled routes force their dispatch strategy and the
        serial routes never touch the pool — so the adaptive router can
        choose pooled-vs-local per query without disturbing the
        engine-pinned ``parallelism``/``parallel_dispatch`` options.
        """
        spec = self._ROUTE_SPECS.get(route)
        if spec is None:
            raise BEASError(
                f"unknown route {route!r} (expected one of "
                f"{', '.join(self._ROUTE_SPECS)})"
            )
        key = f"route:{route}"
        engine = self._executors.get(key)
        if engine is None:
            mode, pooled, dispatch = spec
            engine = BoundedPlanExecutor(
                self.catalog,
                dedup_keys=self._dedup_keys,
                executor=mode,
                rows_per_batch=self._rows_per_batch,
                pool=self._pool_provider if pooled else None,
                dispatch=dispatch,
            )
            self._executors[key] = engine
        return engine

    # ------------------------------------------------------------------ #
    # access schema management
    # ------------------------------------------------------------------ #
    def register(self, constraint: AccessConstraint, *, validate: bool = True) -> None:
        """Register one access constraint and build its index."""
        self.catalog.register(constraint, validate=validate)
        self._refresh_components()
        self._checkpoint_store()

    def register_all(
        self, constraints: Sequence[AccessConstraint], *, validate: bool = True
    ) -> None:
        for constraint in constraints:
            self.catalog.register(constraint, validate=validate)
        self._refresh_components()
        self._checkpoint_store()

    def unregister(self, constraint_name: str) -> None:
        self.catalog.unregister(constraint_name)
        self._refresh_components()
        self._checkpoint_store()

    def _checkpoint_store(self) -> None:
        """Persist a full checkpoint after a schema-level change.

        Register/unregister rebuild or drop whole segments — effects the
        WAL cannot replay — so the store rewrites its segments and
        manifest and resets the log."""
        if self._store is not None:
            self._store.checkpoint(self.catalog)

    # ------------------------------------------------------------------ #
    # the online services
    # ------------------------------------------------------------------ #
    def check(
        self, query: Union[str, ast.Statement], budget: Optional[int] = None
    ) -> CoverageDecision:
        """BE Checker: coverage + deduced bound, without executing."""
        return self._checker.check(query, budget)

    def explain(self, query: Union[str, ast.Statement]) -> str:
        """Bounded plan listing when covered; reasons + host plan otherwise."""
        decision = self.check(query)
        if decision.covered:
            return explain_plan(decision.plan)
        partial = self._optimizer.analyze(query)
        lines = [decision.describe()]
        if partial is not None:
            lines.append(partial.describe())
        lines.append("host plan:")
        lines.append(self._host.explain(query))
        return "\n".join(lines)

    def execute(
        self,
        query: Union[str, ast.Statement],
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        executor: Optional[str] = None,
    ) -> BEASResult:
        """Answer ``query``, choosing the evaluation mode per paper §2.

        .. deprecated:: 2.0
            Use the unified lifecycle instead:
            ``session.query(sql).run()`` (see :mod:`repro.beas.session`).

        With a ``budget``: covered queries whose deduced bound exceeds it
        either raise :class:`~repro.errors.BudgetExceededError` or, with
        ``approximate_over_budget=True``, take the resource-bounded
        approximation route. ``executor`` overrides the bounded
        pipeline's execution mode ("row"/"columnar") for this query.
        """
        _deprecated("execute", "Session.query(sql).run()")
        return self._execute_query(
            query,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            executor=executor,
        )

    def _execute_query(
        self,
        query: Union[str, ast.Statement],
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        executor: Optional[str] = None,
    ) -> BEASResult:
        """Check-then-execute, shared by the ``execute`` shim and the
        performance analyzer (no serving caches involved)."""
        decision = self.check(query, budget)
        return self._execute_decided(
            query,
            decision,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            executor=executor,
        )

    def execute_decided(
        self,
        query: Union[str, ast.Statement],
        decision: CoverageDecision,
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        executor: Optional[str] = None,
    ) -> BEASResult:
        """Execute ``query`` under an already-made checker ``decision``.

        .. deprecated:: 2.0
            Use ``query.decide().run()`` — a pinned
            :class:`~repro.beas.session.Decision` is the lifecycle's
            handle for decide-once/execute-many.
        """
        _deprecated("execute_decided", "Query.decide().run()")
        return self._execute_decided(
            query,
            decision,
            budget=budget,
            allow_partial=allow_partial,
            approximate_over_budget=approximate_over_budget,
            executor=executor,
        )

    def _execute_decided(
        self,
        query: Union[str, ast.Statement],
        decision: CoverageDecision,
        *,
        budget: Optional[int] = None,
        allow_partial: bool = True,
        approximate_over_budget: bool = False,
        executor: Optional[str] = None,
        route: Optional[str] = None,
    ) -> BEASResult:
        """Execute ``query`` under an already-made checker ``decision``.

        The serving layer (``repro.serving``) pins decisions in a cache
        keyed by query fingerprint and access-schema generation — or
        rebinds a pinned plan for an equal-arity binding — and then
        executes through this entry point, skipping the BE Checker.

        A decision made without a budget carries ``within_budget=None``;
        when a ``budget`` is passed here, feasibility is (re)derived from
        the decision's access bound. ``executor`` overrides the bounded
        execution mode per query; answers are mode-independent, so the
        decision and result caches need no extra keying. ``route``
        (learned routing) goes further and pins the full engine shape
        for the covered bounded branch — see :meth:`routed_executor`;
        non-covered paths still follow ``executor``.
        """
        if (
            budget is not None
            and decision.covered
            and decision.within_budget is None
        ):
            decision = dataclasses.replace(
                decision, within_budget=decision.access_bound <= budget
            )
        if decision.covered:
            if budget is not None and not decision.within_budget:
                if approximate_over_budget and isinstance(
                    decision.plan, BoundedPlan
                ):
                    approx = self._approximator.execute(decision.plan, budget)
                    return BEASResult(
                        columns=approx.columns,
                        rows=approx.rows,
                        mode=ExecutionMode.APPROXIMATE,
                        decision=decision,
                        metrics=approx.metrics,
                        approximation=approx,
                    )
                raise BudgetExceededError(decision.access_bound, budget)
            engine = (
                self.routed_executor(route)
                if route is not None
                else self.bounded_executor(executor)
            )
            result = engine.execute(decision.plan)
            return BEASResult.from_query_result(
                result, ExecutionMode.BOUNDED, decision
            )

        if allow_partial:
            partial = self._optimizer.analyze(query)
            if partial is not None:
                result = self._optimizer.execute(partial, executor=executor)
                return BEASResult.from_query_result(
                    result, ExecutionMode.PARTIAL, decision
                )

        result = self._host.execute(query)
        return BEASResult.from_query_result(
            result, ExecutionMode.CONVENTIONAL, decision
        )

    # ------------------------------------------------------------------ #
    # the serving layer (prepared queries + maintenance-aware caches)
    # ------------------------------------------------------------------ #
    def session(self, **server_options) -> "Session":
        """The unified Session/Query/Decision/Result lifecycle over this
        instance (see :mod:`repro.beas.session`): the blessed entry
        point, replacing ``execute``/``prepare``/``serve``.

        ``server_options`` are forwarded to the shared serving backend
        (:class:`~repro.serving.server.BEASServer`) when it is first
        built."""
        from repro.beas.session import Session

        return Session(beas=self, server_options=server_options or None)

    def serve(self, **cache_options) -> "BEASServer":
        """The serving layer over this instance (created once, memoised).

        .. deprecated:: 2.0
            Use :meth:`session` — a
            :class:`~repro.beas.session.Session` drives the same sharded
            serving backend through the unified lifecycle.

        The server is **sharded by table**: prepared executes take read
        locks only on their dependency tables and maintenance takes one
        table's write lock, so traffic on disjoint tables proceeds in
        parallel (pass ``sharded=False`` for the single-lock baseline).

        Keyword options (``result_cache_entries``, ``result_cache_bytes``,
        ``sharded``, ``decision_stripes``, ``result_admission``, …) are
        forwarded to :class:`~repro.serving.server.BEASServer` on first
        use; pass them on the first call.
        """
        _deprecated("serve", "BEAS.session() / Session")
        return self._serve(**cache_options)

    def _serve(self, **cache_options) -> "BEASServer":
        """The memoised serving backend (non-deprecated internal entry:
        ``Session`` and the shims share one server per BEAS)."""
        with self._serve_lock:
            if self._server is None:
                from repro.serving.server import BEASServer

                self._server = BEASServer(self, **cache_options)
            elif cache_options:
                raise ValueError(
                    "the serving layer is already built; pass cache options "
                    "on the first serve() call or construct BEASServer "
                    "directly"
                )
            return self._server

    def serve_async(
        self,
        *,
        max_workers: Optional[int] = None,
        admission_limit: Optional[int] = None,
        **cache_options,
    ) -> "AsyncBEASServer":
        """An asyncio front end over the (shared) serving layer.

        .. deprecated:: 2.0
            Use ``session.serve_async()`` on a
            :class:`~repro.beas.session.Session`.

        Each call builds a fresh front end — its bounded worker pool and
        per-shard maintenance queues belong to the caller's event loop —
        but every front end drives the same memoised sharded
        :class:`~repro.serving.server.BEASServer`, so caches are shared.
        """
        _deprecated("serve_async", "Session.serve_async()")
        from repro.serving.async_server import AsyncBEASServer

        return AsyncBEASServer(
            self._serve(**cache_options),
            max_workers=max_workers,
            admission_limit=admission_limit,
        )

    def prepare(self, sql: str, name: Optional[str] = None) -> "PreparedQuery":
        """Prepare a query template on the default serving layer.

        .. deprecated:: 2.0
            Use ``session.query(sql)`` — a
            :class:`~repro.beas.session.Query` handle wraps the same
            prepared template with ``bind``/``decide``/``run``.
        """
        _deprecated("prepare", "Session.query(sql)")
        return self._serve().prepare(sql, name)

    # ------------------------------------------------------------------ #
    # data updates (routed through incremental maintenance)
    # ------------------------------------------------------------------ #
    def insert(self, table_name: str, rows, *, adjust_bounds: bool = False):
        """Insert rows, updating every affected access index incrementally.

        With ``adjust_bounds=False`` (default) a batch that would violate a
        cardinality bound is rejected atomically; with ``True`` the
        violated constraint's N is widened instead (paper §3, Maintenance).
        """
        from repro.maintenance.incremental import MaintenanceManager, ViolationPolicy

        policy = (
            ViolationPolicy.ADJUST if adjust_bounds else ViolationPolicy.REJECT
        )
        # for the fleet's delta tail: the table version *before* this
        # batch commits, so a replica at exactly that version can catch
        # up with the delta instead of a full snapshot re-ship
        fleet = self._fleet_for_maintenance()
        prev_version = (
            self.database.table(table_name).version
            if fleet is not None and table_name in self.database
            else None
        )
        manager = MaintenanceManager(self.catalog, policy=policy)
        batch = manager.insert(table_name, rows)
        if fleet is not None and batch.inserted:
            table = self.database.table(table_name)
            fleet.note_insert(
                table, table.rows[-batch.inserted:], prev_version
            )
        if self._store is not None and batch.inserted:
            # persistence discipline: the WAL record is appended only
            # after the in-memory apply committed (a REJECT rollback
            # logs nothing), under the same serving write section that
            # serialises the maintenance itself
            table = self.database.table(table_name)
            self._store.log_insert(table, table.rows[-batch.inserted:])
            for name in batch.adjusted_constraints:
                self._store.log_adjust(name, self.catalog.schema.get(name).n)
        # snapshot: host_engine() may add comparators concurrently
        for engine in list(self._host_engines.values()):
            engine.invalidate_statistics()
        return batch

    def delete(self, table_name: str, rows):
        """Delete rows (bag semantics), keeping access indices exact."""
        from repro.maintenance.incremental import MaintenanceManager

        fleet = self._fleet_for_maintenance()
        prev_version = (
            self.database.table(table_name).version
            if fleet is not None and table_name in self.database
            else None
        )
        manager = MaintenanceManager(self.catalog)
        batch = manager.delete(table_name, rows)
        if fleet is not None and batch.deleted:
            fleet.note_delete(
                self.database.table(table_name), rows, prev_version
            )
        if self._store is not None and batch.deleted:
            self._store.log_delete(self.database.table(table_name), rows)
        for engine in list(self._host_engines.values()):
            engine.invalidate_statistics()
        return batch

    # ------------------------------------------------------------------ #
    def analyze_performance(
        self,
        query: Union[str, ast.Statement],
        profiles: Optional[Sequence[EngineProfile]] = None,
    ) -> PerformanceAnalysis:
        """The Fig.-3 analysis panel for a covered query."""
        analyzer = PerformanceAnalyzer(
            self.catalog,
            dedup_keys=self._dedup_keys,
            executor=self.executor,
            rows_per_batch=self._rows_per_batch,
        )
        if profiles is None:
            return analyzer.analyze(query)
        return analyzer.analyze(query, profiles)

    def host_engine(self, profile: Optional[EngineProfile] = None) -> ConventionalEngine:
        """A conventional engine over the same data (comparator access).

        Engines are cached per profile so table statistics — the
        equivalent of an offline ANALYZE — are collected once, not on
        every comparison run.
        """
        if profile is None:
            return self._host
        engine = self._host_engines.get(profile.name)
        if engine is None or engine.profile is not profile:
            engine = ConventionalEngine(self.database, profile)
            self._host_engines[profile.name] = engine
        return engine
