"""BEAS system facade (S9): the end-to-end prototype of the paper.

The blessed public surface is the unified lifecycle in
:mod:`repro.beas.session` (``Session`` / ``Query`` / ``Decision`` /
``Result``); :class:`~repro.beas.system.BEAS` remains the engine
underneath, with its old entry points kept as deprecation shims.
"""

from repro.beas.result import BEASResult, ExecutionMode
from repro.beas.session import Decision, ExecutionOptions, Query, Result, Session
from repro.beas.system import BEAS

__all__ = [
    "BEAS",
    "BEASResult",
    "Decision",
    "ExecutionMode",
    "ExecutionOptions",
    "Query",
    "Result",
    "Session",
]
