"""BEAS system facade (S9): the end-to-end prototype of the paper."""

from repro.beas.result import BEASResult, ExecutionMode
from repro.beas.system import BEAS

__all__ = ["BEAS", "BEASResult", "ExecutionMode"]
