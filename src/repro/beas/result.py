"""Result wrapper returned by the BEAS facade."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.engine.executor import QueryResult
from repro.engine.metrics import ExecutionMetrics
from repro.bounded.approximation import ApproximateResult
from repro.bounded.coverage import CoverageDecision


class ExecutionMode(enum.Enum):
    """How BEAS answered a query (paper §2, steps (1)-(3))."""

    BOUNDED = "bounded"  # covered: bounded plan, exact answers
    PARTIAL = "partial"  # not covered: partially bounded plan, exact answers
    CONVENTIONAL = "conventional"  # not covered: host DBMS plan, exact answers
    APPROXIMATE = "approximate"  # over budget: resource-bounded approximation


@dataclass
class BEASResult:
    """Rows plus how they were computed and what the checker decided."""

    columns: list[str]
    rows: list[tuple]
    mode: ExecutionMode
    decision: CoverageDecision
    metrics: ExecutionMetrics
    approximation: Optional[ApproximateResult] = None

    @classmethod
    def from_query_result(
        cls,
        result: QueryResult,
        mode: ExecutionMode,
        decision: CoverageDecision,
    ) -> "BEASResult":
        return cls(
            columns=result.columns,
            rows=result.rows,
            mode=mode,
            decision=decision,
            metrics=result.metrics,
        )

    def to_set(self) -> set[tuple]:
        return set(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def describe(self) -> str:
        summary = (
            f"{len(self.rows)} rows via {self.mode.value} evaluation in "
            f"{self.metrics.seconds * 1000:.2f} ms "
            f"(fetched {self.metrics.tuples_fetched}, "
            f"scanned {self.metrics.tuples_scanned} tuples)"
        )
        if self.approximation is not None:
            summary += f"; {self.approximation.describe()}"
        return summary
