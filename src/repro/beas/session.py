"""The unified public API: ``Session`` / ``Query`` / ``Decision`` / ``Result``.

BEAS's value (§3 of the paper) is that a query is *decided once* against
the access schema and then executed within bounds many times. The
pre-2.0 surface had grown four divergent entry paths for that lifecycle
(``BEAS.execute``, ``execute_decided``, ``prepare``/``PreparedQuery``,
``serve``/``serve_async``) with inconsistent result shapes and per-call
option plumbing. This module collapses them into one lifecycle::

    with Session(database, access_schema) as session:
        q = session.query(
            "SELECT region FROM call WHERE pnum = '100' AND date = 'd'")
        decision = q.bind(date="2016-06-01").decide()
        print(decision.verdict, decision.access_bound, decision.provenance)
        result = decision.run()
        print(result.rows, result.metrics.tuples_fetched)

        # one template, many bindings: the plan pinned above is REBOUND
        # for every later equal-arity binding — zero BE Checker runs
        for day in days:
            r = q.bind(date=day).run()

* :class:`Session` — context-managed facade over one
  :class:`~repro.beas.system.BEAS` engine plus the sharded serving
  backend (parse/decision/result caches, per-table locks, maintenance).
* :class:`Query` — an immutable handle for one prepared template;
  ``bind`` produces a new handle for a concrete binding, ``decide``
  pins (or rebinds) the coverage decision, ``run`` executes.
* :class:`Decision` — the unified checker outcome: boundedness verdict,
  pinned plan, deduced bounds, budget feasibility, and **cache
  provenance** (``fresh`` | ``cached`` | ``rebound``).
* :class:`Result` — rows + schema + :class:`ExecutionMetrics`
  (executor/pool/lock counters) + the decision that produced them.
* :class:`ExecutionOptions` — every execution knob in one validated
  dataclass, resolved through a single precedence chain:
  **call > Query > Session > EngineProfile > environment** (the
  ``BEAS_*`` variables, read by :mod:`repro.config`).

The engine-level knobs (``rows_per_batch``, ``parallelism``,
``parallel_dispatch``) are pinned when the Session builds its engine;
supplying a *different* value at Query or call level raises
:class:`~repro.errors.BEASError` rather than being silently ignored.
``executor`` may be overridden per Query or per call (answers are
mode-independent).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence, Union

from repro import config
from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.beas.result import BEASResult, ExecutionMode
from repro.beas.system import BEAS
from repro.bounded.coverage import CoverageDecision
from repro.bounded.plan import AnyBoundedPlan, explain_plan
from repro.engine.metrics import ExecutionMetrics
from repro.engine.profiles import EngineProfile, POSTGRESQL
from repro.errors import BEASError
from repro.storage.database import Database

if TYPE_CHECKING:  # pragma: no cover
    from repro.bounded.approximation import ApproximateResult
    from repro.serving.async_server import AsyncBEASServer
    from repro.serving.params import ParameterSlot
    from repro.serving.prepared import PreparedQuery
    from repro.serving.server import BEASServer, ServingStats

#: Engine-level fields fixed when the Session builds its BEAS engine.
_ENGINE_PINNED = (
    "rows_per_batch",
    "parallelism",
    "parallel_dispatch",
    "storage",
    "storage_dir",
    "replicas",
    "fleet_port_base",
)


# --------------------------------------------------------------------------- #
# options
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionOptions:
    """Every execution knob, validated at construction.

    ``None`` means "inherit from the next layer down" in the precedence
    chain (call > Query > Session > EngineProfile > environment). See
    the module docstring for which fields are engine-pinned.
    """

    executor: Optional[str] = None  # "row" | "columnar"
    rows_per_batch: Optional[int] = None
    parallelism: Optional[int] = None
    parallel_dispatch: Optional[str] = None  # "auto" | "plan" | "batch"
    budget: Optional[int] = None  # tuple budget (None = unbounded)
    allow_partial: Optional[bool] = None
    approximate_over_budget: Optional[bool] = None
    use_result_cache: Optional[bool] = None
    result_reuse: Optional[str] = None  # "exact" | "subsume"
    routing: Optional[str] = None  # "static" | "learned"
    storage: Optional[str] = None  # "memory" | "mmap"
    storage_dir: Optional[str] = None  # store directory (mmap only)
    replicas: Optional[int] = None  # serving replicas (>= 2 = fleet)
    fleet_port_base: Optional[int] = None  # first replica TCP port

    def __post_init__(self) -> None:
        if self.executor is not None:
            config.validate_executor(self.executor)
        if self.storage is not None:
            config.validate_storage(self.storage)
        if self.storage_dir is not None:
            config.validate_storage_dir(self.storage_dir)
        if self.result_reuse is not None:
            config.validate_result_reuse(self.result_reuse)
        if self.routing is not None:
            config.validate_routing(self.routing)
        if self.rows_per_batch is not None:
            config.validate_rows_per_batch(self.rows_per_batch)
        if self.parallelism is not None:
            config.validate_parallelism(self.parallelism)
        if self.parallel_dispatch is not None:
            config.validate_dispatch(self.parallel_dispatch)
        if self.replicas is not None:
            config.validate_replicas(self.replicas)
        if self.fleet_port_base is not None:
            config.validate_fleet_port_base(self.fleet_port_base)
        if self.budget is not None:
            if not isinstance(self.budget, int) or isinstance(self.budget, bool):
                raise BEASError(
                    f"budget must be an int, got {type(self.budget).__name__}"
                )
            if self.budget < 0:
                raise BEASError(f"budget must be >= 0, got {self.budget}")
        for name in ("allow_partial", "approximate_over_budget", "use_result_cache"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, bool):
                raise BEASError(f"{name} must be a bool, got {value!r}")

    # ------------------------------------------------------------------ #
    def over(self, base: Optional["ExecutionOptions"]) -> "ExecutionOptions":
        """This layer merged over ``base``: set fields win, ``None``
        fields inherit."""
        if base is None:
            return self
        merged = {
            field.name: (
                getattr(self, field.name)
                if getattr(self, field.name) is not None
                else getattr(base, field.name)
            )
            for field in dataclasses.fields(self)
        }
        return ExecutionOptions(**merged)

    def replace(self, **fields) -> "ExecutionOptions":
        return dataclasses.replace(self, **fields)

    @staticmethod
    def from_profile(profile: EngineProfile) -> "ExecutionOptions":
        """The EngineProfile layer of the chain. Profile fields at their
        dataclass defaults count as unset (``parallelism=0`` means "no
        opinion", not "in-process forever"), mirroring how profiles have
        always behaved as defaults-of-last-resort."""
        return ExecutionOptions(
            executor=profile.executor if profile.executor != "row" else None,
            rows_per_batch=profile.rows_per_batch or None,
            parallelism=profile.parallelism or None,
            parallel_dispatch=(
                profile.parallel_dispatch
                if profile.parallel_dispatch != "auto"
                else None
            ),
        )

    @staticmethod
    def from_environment() -> "ExecutionOptions":
        """The environment layer (``BEAS_*``, via :mod:`repro.config`)."""
        return ExecutionOptions(
            executor=config.env_executor(),
            rows_per_batch=config.env_rows_per_batch(),
            parallelism=config.env_parallelism(),
            result_reuse=config.env_result_reuse(),
            routing=config.env_routing(),
            storage=config.env_storage(),
            storage_dir=config.env_storage_dir(),
            replicas=config.env_replicas(),
            fleet_port_base=config.env_fleet_port_base(),
        )

    @staticmethod
    def defaults() -> "ExecutionOptions":
        """The bottom of the chain: every field concrete."""
        return ExecutionOptions(
            executor="row",
            rows_per_batch=config.DEFAULT_ROWS_PER_BATCH,
            parallelism=1,
            parallel_dispatch="auto",
            budget=None,
            allow_partial=True,
            approximate_over_budget=False,
            use_result_cache=True,
            result_reuse="exact",
            routing="static",
            storage="memory",
            storage_dir=None,  # mmap without a dir owns a temp directory
            replicas=1,
            fleet_port_base=config.DEFAULT_FLEET_PORT_BASE,
        )

    def describe(self) -> str:
        pairs = ", ".join(
            f"{field.name}={getattr(self, field.name)!r}"
            for field in dataclasses.fields(self)
            if getattr(self, field.name) is not None
        )
        return f"ExecutionOptions({pairs or 'inherit all'})"


def _coerce_options(
    options: Optional[ExecutionOptions], fields: Mapping[str, Any]
) -> Optional[ExecutionOptions]:
    """Combine an options object and/or loose keyword fields into one
    layer (keywords win over the object's fields)."""
    if fields:
        layer = ExecutionOptions(**fields)
        return layer.over(options) if options is not None else layer
    return options


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #
@dataclass
class Result:
    """The unified execution outcome: rows, schema, metrics, provenance.

    Wraps what the engine produced with the :class:`Decision` that
    drove it and the fully resolved :class:`ExecutionOptions` the run
    used — one shape for bounded, partially bounded, conventional and
    approximate answers, cached or computed, row or columnar, pooled or
    in-process.
    """

    columns: list[str]
    rows: list[tuple]
    mode: ExecutionMode
    metrics: ExecutionMetrics
    decision: "Decision"
    options: ExecutionOptions
    approximation: Optional["ApproximateResult"] = None

    @property
    def schema(self) -> tuple[str, ...]:
        """The output schema (column names, in order)."""
        return tuple(self.columns)

    @property
    def served_from_cache(self) -> bool:
        return self.metrics.served_from_cache

    def to_set(self) -> set[tuple]:
        return set(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def describe(self) -> str:
        summary = (
            f"{len(self.rows)} rows via {self.mode.value} evaluation in "
            f"{self.metrics.seconds * 1000:.2f} ms "
            f"(fetched {self.metrics.tuples_fetched}, "
            f"scanned {self.metrics.tuples_scanned} tuples; "
            f"decision {self.decision.provenance})"
        )
        if self.approximation is not None:
            summary += f"; {self.approximation.describe()}"
        return summary


# --------------------------------------------------------------------------- #
# decisions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Decision:
    """The unified BE Checker outcome for one bound query.

    Carries the boundedness verdict, the pinned plan and deduced
    bounds, budget feasibility, and how the decision was obtained
    (``provenance``): ``"fresh"`` — a full checker run; ``"cached"`` —
    an exact decision-cache hit for this binding; ``"rebound"`` — a
    pinned plan patched for this binding's constants without any
    checker run (constraint-preserving rebinding,
    :mod:`repro.bounded.rebind`); ``"result-cache"`` — the rows came
    straight from the result cache; ``"subsumed"`` — the rows were
    re-filtered from a cached bounded superset
    (:mod:`repro.bounded.subsume`, ``result_reuse="subsume"``).
    """

    coverage: CoverageDecision
    provenance: str
    generation: int  # access-schema generation the decision was made under
    query: Optional["Query"] = None
    #: the tuple budget this decision was evaluated against (None = no
    #: budget); ``run()`` defaults to it, so an over-budget verdict is
    #: never silently executed unbounded
    budget: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def covered(self) -> bool:
        return self.coverage.covered

    @property
    def verdict(self) -> str:
        """``"bounded"`` when a bounded plan exists, else
        ``"not-covered"`` (execution falls back per §2)."""
        return "bounded" if self.coverage.covered else "not-covered"

    @property
    def plan(self) -> Optional[AnyBoundedPlan]:
        return self.coverage.plan

    @property
    def access_bound(self) -> Optional[int]:
        return self.coverage.access_bound

    @property
    def tight_access_bound(self) -> Optional[int]:
        return self.coverage.tight_access_bound

    @property
    def bag_exact(self) -> bool:
        return self.coverage.bag_exact

    @property
    def within_budget(self) -> Optional[bool]:
        return self.coverage.within_budget

    @property
    def reasons(self) -> list[str]:
        return self.coverage.reasons

    @property
    def constraints_used(self) -> list[AccessConstraint]:
        return self.coverage.constraints_used

    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        options: Optional[ExecutionOptions] = None,
        **fields,
    ) -> Result:
        """Execute under this (pinned) decision.

        Runs the bound query through the serving caches: the decision
        pinned here is an exact cache hit, so no BE Checker work is
        repeated — decide once, run many. The budget the decision was
        evaluated against carries over unless the call layer overrides
        it, so ``decide(budget=...)`` → ``run()`` enforces the budget
        (raising :class:`~repro.errors.BudgetExceededError` or taking
        the approximation route) instead of silently running unbounded.
        """
        if self.query is None:
            raise BEASError(
                "this Decision is not attached to a Query handle; "
                "use session.query(...).decide()"
            )
        if (
            self.budget is not None
            and "budget" not in fields
            and (options is None or options.budget is None)
        ):
            fields["budget"] = self.budget
        return self.query.run(options=options, **fields)

    def explain(self) -> str:
        """The bounded plan listing (or the not-covered reasons)."""
        if self.coverage.covered and self.coverage.plan is not None:
            return explain_plan(self.coverage.plan)
        return self.coverage.describe()

    def describe(self) -> str:
        lines = [
            f"decision: {self.verdict} ({self.provenance}, "
            f"schema generation {self.generation})",
            self.coverage.describe(),
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# queries
# --------------------------------------------------------------------------- #
class Query:
    """An immutable handle for one prepared query template (+ binding).

    Created by :meth:`Session.query`; ``bind`` and ``with_options``
    return *new* handles, so one template can be shared across threads
    while each caller narrows its own binding and options.
    """

    def __init__(
        self,
        session: "Session",
        prepared: "PreparedQuery",
        params: Optional[Mapping[str, Any]] = None,
        options: Optional[ExecutionOptions] = None,
    ):
        self._session = session
        self._prepared = prepared
        self._params: dict[str, Any] = dict(params or {})
        self._options = options

    # ------------------------------------------------------------------ #
    @property
    def sql(self) -> str:
        return self._prepared.sql

    @property
    def name(self) -> str:
        return self._prepared.name

    @property
    def fingerprint(self) -> str:
        """The template's stable fingerprint (binding-independent)."""
        return self._prepared.fingerprint

    @property
    def tables(self) -> frozenset[str]:
        return self._prepared.tables

    @property
    def slots(self) -> dict[str, "ParameterSlot"]:
        """The template's parameterisable constant slots."""
        return self._prepared.slots

    @property
    def params(self) -> dict[str, Any]:
        """The current binding overrides (empty = template constants)."""
        return dict(self._params)

    @property
    def options(self) -> Optional[ExecutionOptions]:
        return self._options

    @property
    def session(self) -> "Session":
        return self._session

    # ------------------------------------------------------------------ #
    def bind(
        self, params: Optional[Mapping[str, Any]] = None, **kwargs: Any
    ) -> "Query":
        """A new handle with these overrides merged over the current ones.

        Keys may be fully qualified slot names (``{"call.date": d}``) or
        bare column names when unambiguous (``date=d``)."""
        merged = dict(self._params)
        merged.update(params or {})
        merged.update(kwargs)
        return Query(self._session, self._prepared, merged, self._options)

    def unbound(self) -> "Query":
        """A new handle back on the template's own constants."""
        return Query(self._session, self._prepared, None, self._options)

    def with_options(
        self, options: Optional[ExecutionOptions] = None, **fields
    ) -> "Query":
        """A new handle with an options layer merged over this one's."""
        layer = _coerce_options(options, fields)
        if layer is None:
            return self
        return Query(
            self._session, self._prepared, self._params, layer.over(self._options)
        )

    # ------------------------------------------------------------------ #
    def decide(self, budget: Optional[int] = None) -> Decision:
        """Pin (or rebind) the coverage decision for this binding.

        The first binding of each arity signature pays a full BE Checker
        run; later equal-signature bindings patch the pinned plan's
        constants directly (``provenance == "rebound"``) — no checker
        run. ``budget`` defaults to the resolved options' budget."""
        resolved = self._session._resolve(self._options, None)
        if budget is None:
            budget = resolved.budget
        coverage, provenance = self._session.server.decide_prepared(
            self._prepared, self._params or None, budget=budget
        )
        return Decision(
            coverage=coverage,
            provenance=provenance,
            generation=self._session.beas.catalog.schema_generation,
            query=self,
            budget=budget,
        )

    def explain(self) -> str:
        """The bounded plan for this binding, or the fallback reasons."""
        decision = self.decide()
        if decision.covered:
            return decision.explain()
        return self._session.beas.explain(
            self._prepared.binding(self._params or None).statement
        )

    def run(
        self,
        *,
        options: Optional[ExecutionOptions] = None,
        **fields,
    ) -> Result:
        """Execute this binding through the serving caches.

        ``options``/keyword fields form the call layer of the precedence
        chain (e.g. ``run(budget=5000, executor="columnar")``)."""
        call_layer = _coerce_options(options, fields)
        resolved = self._session._resolve(self._options, call_layer)
        raw = self._session.server.execute_prepared(
            self._prepared,
            self._params or None,
            budget=resolved.budget,
            allow_partial=resolved.allow_partial,
            approximate_over_budget=resolved.approximate_over_budget,
            use_result_cache=resolved.use_result_cache,
            executor=resolved.executor,
            result_reuse=resolved.result_reuse,
            routing=resolved.routing,
        )
        return self._session._wrap(raw, self, resolved)

    __call__ = run

    def __repr__(self) -> str:
        bound = f", params={sorted(self._params)}" if self._params else ""
        return f"Query({self.name}{bound})"


# --------------------------------------------------------------------------- #
# sessions
# --------------------------------------------------------------------------- #
class Session:
    """Context-managed facade over one BEAS engine + serving backend.

    Build it over a database (the Session owns and closes the engine)::

        with Session(database, access_schema) as session:
            result = session.query(sql).run()

    or adopt an existing engine (``Session(beas=engine)`` or
    ``engine.session()``) — the engine's lifetime stays the caller's.

    One Session per process is the intended shape: its serving backend
    is sharded by table and thread-safe, so any number of client
    threads can ``query``/``run`` concurrently while maintenance
    (:meth:`insert`/:meth:`delete`) proceeds per table.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        access_schema: Optional[AccessSchema] = None,
        *,
        beas: Optional[BEAS] = None,
        profile: EngineProfile = POSTGRESQL,
        options: Optional[ExecutionOptions] = None,
        dedup_keys: bool = False,
        require_exact_multiplicities: bool = False,
        server_options: Optional[Mapping[str, Any]] = None,
    ):
        if (database is None) == (beas is None):
            raise BEASError(
                "Session needs exactly one of `database` (it builds the "
                "engine) or `beas` (it adopts an existing engine)"
            )
        self._session_options = options
        self._server_options = dict(server_options or {})
        if beas is not None:
            if access_schema is not None:
                raise BEASError(
                    "pass access_schema only when the Session builds the "
                    "engine; an adopted BEAS already has its catalog"
                )
            self._beas = beas
            self._owns_engine = False
            # the engine's pinned knobs are the session layer's floor
            base = ExecutionOptions(
                executor=beas.executor,
                rows_per_batch=beas._rows_per_batch,
                parallelism=beas.parallelism,
                parallel_dispatch=beas._parallel_dispatch,
                storage=beas.storage,
                storage_dir=beas.storage_dir,
                replicas=beas.replicas,
                fleet_port_base=beas.fleet_port_base,
            )
            self._check_engine_consistency(options, base)
            # the engine's pinned knobs are all set in `base`, so the
            # environment layer only fills engine-independent fields
            # (e.g. BEAS_RESULT_REUSE) before the built-in defaults
            self._resolved_options = (
                options.over(base) if options is not None else base
            ).over(ExecutionOptions.from_environment()).over(
                ExecutionOptions.defaults()
            )
        else:
            resolved = self._chain(options, profile)
            self._resolved_options = resolved
            self._beas = BEAS(
                database,
                access_schema,
                host_profile=profile,
                dedup_keys=dedup_keys,
                require_exact_multiplicities=require_exact_multiplicities,
                executor=resolved.executor,
                rows_per_batch=resolved.rows_per_batch,
                parallelism=resolved.parallelism,
                parallel_dispatch=resolved.parallel_dispatch,
                storage=resolved.storage,
                # an ambient BEAS_STORAGE_DIR without mmap mode is inert,
                # not an error — only mmap engines take a directory
                storage_dir=(
                    resolved.storage_dir
                    if resolved.storage == "mmap"
                    else None
                ),
                replicas=resolved.replicas,
                fleet_port_base=resolved.fleet_port_base,
            )
            self._owns_engine = True
        self._server_ref: Optional["BEASServer"] = None
        self._closed = False

    @staticmethod
    def _chain(
        options: Optional[ExecutionOptions], profile: EngineProfile
    ) -> ExecutionOptions:
        """Session > EngineProfile > environment > built-in defaults."""
        resolved = ExecutionOptions.from_profile(profile).over(
            ExecutionOptions.from_environment()
        ).over(ExecutionOptions.defaults())
        return options.over(resolved) if options is not None else resolved

    @staticmethod
    def _check_engine_consistency(
        options: Optional[ExecutionOptions], engine: ExecutionOptions
    ) -> None:
        if options is None:
            return
        for name in _ENGINE_PINNED:
            wanted = getattr(options, name)
            if wanted is not None and wanted != getattr(engine, name):
                raise BEASError(
                    f"{name}={wanted!r} conflicts with the adopted engine's "
                    f"{name}={getattr(engine, name)!r}; engine-level options "
                    "are fixed when the BEAS engine is built"
                )

    def _resolve(
        self,
        query_layer: Optional[ExecutionOptions],
        call_layer: Optional[ExecutionOptions],
    ) -> ExecutionOptions:
        """call > Query > (session-resolved) — with the engine-pinned
        fields guarded against silent divergence."""
        resolved = self._resolved_options
        for layer in (query_layer, call_layer):
            if layer is None:
                continue
            for name in _ENGINE_PINNED:
                wanted = getattr(layer, name)
                if wanted is not None and wanted != getattr(resolved, name):
                    raise BEASError(
                        f"{name}={wanted!r} cannot be overridden per query "
                        f"or per call (the Session's engine is pinned to "
                        f"{name}={getattr(resolved, name)!r}); set it on the "
                        "Session, the EngineProfile, or the environment"
                    )
            pinned = layer.executor is not None and layer.routing is None
            resolved = layer.over(resolved)
            if pinned and resolved.routing == "learned":
                # an explicit executor at this layer pins the mode:
                # routing inherited from a lower layer (e.g. ambient
                # BEAS_ROUTING=learned) must not reroute it — setting
                # routing alongside the executor re-enables the router
                resolved = resolved.replace(routing="static")
        return resolved

    # ------------------------------------------------------------------ #
    @property
    def beas(self) -> BEAS:
        """The underlying engine (checker/planner/executor facade)."""
        return self._beas

    @property
    def database(self) -> Database:
        return self._beas.database

    @property
    def server(self) -> "BEASServer":
        """The shared sharded serving backend (built on first use; the
        session's ``server_options`` apply to that first build)."""
        server = self._server_ref
        if server is None:
            server = self._beas._serve(**self._server_options)
            self._server_ref = server
        return server

    @property
    def options(self) -> ExecutionOptions:
        """The session-resolved options (every field concrete)."""
        return self._resolved_options

    # ------------------------------------------------------------------ #
    # the lifecycle
    # ------------------------------------------------------------------ #
    def query(self, sql: str, name: Optional[str] = None) -> Query:
        """Prepare ``sql`` once and return its :class:`Query` handle."""
        return Query(self, self.server.prepare(sql, name))

    def run(
        self,
        sql: Union[str, Any],
        *,
        options: Optional[ExecutionOptions] = None,
        **fields,
    ) -> Result:
        """One-shot convenience: ``session.query(sql).run(...)`` without
        keeping the handle (still served through every cache)."""
        call_layer = _coerce_options(options, fields)
        resolved = self._resolve(None, call_layer)
        raw = self.server.execute(
            sql,
            budget=resolved.budget,
            allow_partial=resolved.allow_partial,
            approximate_over_budget=resolved.approximate_over_budget,
            use_result_cache=resolved.use_result_cache,
            executor=resolved.executor,
            result_reuse=resolved.result_reuse,
            routing=resolved.routing,
        )
        return self._wrap(raw, None, resolved)

    def explain(self, sql: str) -> str:
        return self.query(sql).explain()

    def analyze(self, sql: str, profiles=None):
        """The Fig.-3 performance panel for a covered query (engine
        knobs follow this session's resolved options)."""
        return self._beas.analyze_performance(sql, profiles)

    def _wrap(
        self,
        raw: BEASResult,
        query: Optional[Query],
        resolved: ExecutionOptions,
    ) -> Result:
        decision = Decision(
            coverage=raw.decision,
            provenance=raw.metrics.decision_provenance or "fresh",
            generation=self._beas.catalog.schema_generation,
            query=query,
            budget=resolved.budget,
        )
        return Result(
            columns=list(raw.columns),
            rows=list(raw.rows),
            mode=raw.mode,
            metrics=raw.metrics,
            decision=decision,
            options=resolved,
            approximation=raw.approximation,
        )

    # ------------------------------------------------------------------ #
    # access schema + maintenance (through the serving locks)
    # ------------------------------------------------------------------ #
    def register(self, constraint: AccessConstraint, *, validate: bool = True) -> None:
        self.server.register(constraint, validate=validate)

    def register_all(
        self, constraints: Sequence[AccessConstraint], *, validate: bool = True
    ) -> None:
        self.server.register_all(constraints, validate=validate)

    def unregister(self, constraint_name: str) -> None:
        self.server.unregister(constraint_name)

    def insert(self, table_name: str, rows, *, adjust_bounds: bool = False):
        return self.server.insert(table_name, rows, adjust_bounds=adjust_bounds)

    def delete(self, table_name: str, rows):
        return self.server.delete(table_name, rows)

    # ------------------------------------------------------------------ #
    def serve_async(
        self,
        *,
        max_workers: Optional[int] = None,
        admission_limit: Optional[int] = None,
    ) -> "AsyncBEASServer":
        """An asyncio front end over this session's serving backend."""
        from repro.serving.async_server import AsyncBEASServer

        return AsyncBEASServer(
            self.server,
            max_workers=max_workers,
            admission_limit=admission_limit,
        )

    def stats(self) -> "ServingStats":
        """Serving counters, including plan-rebind and checker-run
        totals."""
        return self.server.stats()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release engine resources (idempotent).

        Closes the engine pool when this Session built the engine; an
        adopted engine is left to its owner."""
        self._closed = True
        if self._owns_engine:
            self._beas.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Session({self._beas.database.name}: {state}, "
            f"{self._resolved_options.describe()})"
        )
