"""repro — reproduction of *BEAS: Bounded Evaluation of SQL Queries*
(Cao, Fan, Wang, Yuan, Li, Chen; SIGMOD 2017).

BEAS answers SQL queries by accessing a bounded fraction ``D_Q`` of the
dataset ``D``, with ``Q(D_Q) = Q(D)`` and ``|D_Q|`` determined only by the
query and an *access schema* (cardinality constraints + indices) — never
by ``|D|``.

Quickstart (the unified Session/Query/Decision/Result lifecycle)::

    from repro import (
        AccessConstraint, Database, DatabaseSchema, DataType, Session,
        TableSchema,
    )

    schema = DatabaseSchema([
        TableSchema("call", [("pnum", DataType.STRING),
                             ("recnum", DataType.STRING),
                             ("date", DataType.DATE),
                             ("region", DataType.STRING)]),
    ])
    db = Database(schema)
    # ... load data ...
    with Session(db) as session:
        session.register(AccessConstraint(
            "call", ["pnum", "date"], ["recnum", "region"], 500,
            name="psi1"))
        q = session.query(
            "SELECT DISTINCT region FROM call "
            "WHERE pnum = '5550001' AND date = '2016-06-01'")
        decision = q.decide()
        assert decision.covered and decision.access_bound == 500
        result = decision.run()
        # one template, many bindings — the pinned plan is REBOUND per
        # binding (no BE Checker re-run for equal-arity bindings):
        other = q.bind(date="2016-06-02").run()

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-vs-measured record, and docs/api.md for the API reference and the
migration guide from the deprecated ``BEAS.execute``/``prepare``/
``serve`` entry points.
"""

from repro.catalog.types import DataType
from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.storage.database import Database
from repro.storage.table import Table
from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.access.index import AccessIndex
from repro.access.catalog import ASCatalog
from repro.engine.executor import ConventionalEngine, QueryResult
from repro.engine.pool import EnginePool, PoolStats
from repro.engine.profiles import EngineProfile, MARIADB, MYSQL, POSTGRESQL, PROFILES
from repro.bounded.coverage import BoundedEvaluabilityChecker, CoverageDecision
from repro.bounded.planner import BoundedPlanGenerator
from repro.bounded.executor import BoundedPlanExecutor
from repro.bounded.optimizer import BEPlanOptimizer
from repro.bounded.approximation import BoundedApproximator
from repro.bounded.analyzer import PerformanceAnalyzer
from repro.beas.system import BEAS
from repro.beas.result import BEASResult, ExecutionMode
from repro.beas.session import Decision, ExecutionOptions, Query, Result, Session
from repro.config import EnvConfig, load_env_config
from repro.errors import BEASDeprecationWarning, BEASError
from repro.serving import BEASServer, PreparedQuery, ServingStats

__version__ = "2.0.0"

__all__ = [
    "DataType",
    "Column",
    "TableSchema",
    "DatabaseSchema",
    "Database",
    "Table",
    "AccessConstraint",
    "AccessSchema",
    "AccessIndex",
    "ASCatalog",
    "ConventionalEngine",
    "QueryResult",
    "EngineProfile",
    "EnginePool",
    "PoolStats",
    "POSTGRESQL",
    "MYSQL",
    "MARIADB",
    "PROFILES",
    "BoundedEvaluabilityChecker",
    "CoverageDecision",
    "BoundedPlanGenerator",
    "BoundedPlanExecutor",
    "BEPlanOptimizer",
    "BoundedApproximator",
    "PerformanceAnalyzer",
    "BEAS",
    "BEASResult",
    "BEASDeprecationWarning",
    "BEASError",
    "ExecutionMode",
    "BEASServer",
    "PreparedQuery",
    "ServingStats",
    "Session",
    "Query",
    "Decision",
    "Result",
    "ExecutionOptions",
    "EnvConfig",
    "load_env_config",
    "__version__",
]
