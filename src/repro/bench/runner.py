"""Timing and dataset-caching helpers for the benchmark harness."""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.workloads.tlc import TLCDataset, generate_tlc

T = TypeVar("T")


@dataclass(frozen=True)
class Measurement:
    """One timed call: result + elapsed seconds."""

    value: object
    seconds: float


def measure(fn: Callable[[], T]) -> Measurement:
    """Run ``fn`` once under a monotonic timer."""
    start = time.perf_counter()
    value = fn()
    return Measurement(value=value, seconds=time.perf_counter() - start)


@functools.lru_cache(maxsize=8)
def cached_tlc(scale: int, seed: int = 42) -> TLCDataset:
    """Generate (once per process) the TLC dataset at ``scale``.

    Benchmarks across files share generated datasets so the sweep over
    Fig. 4's five sizes only pays generation once per size.
    """
    return generate_tlc(scale=scale, seed=seed)
