"""Plain-text tables for benchmark output (the rows the paper reports)."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def series_row(label: str, values: Sequence[float], unit: str = "s") -> str:
    """One Fig.-4-style series line: label followed by per-size values."""
    rendered = "  ".join(f"{v:.3f}{unit}" for v in values)
    return f"{label:>12}: {rendered}"
