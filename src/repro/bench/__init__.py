"""Benchmark harness helpers (S11) shared by the files in ``benchmarks/``."""

from repro.bench.runner import measure, cached_tlc
from repro.bench.reporting import format_table, print_table, series_row

__all__ = ["measure", "cached_tlc", "format_table", "print_table", "series_row"]
