"""Command-line interface: the demo portal, in terminal form.

The SIGMOD demo exposed BEAS through a web portal (Fig. 2); this CLI
offers the same interactions:

* ``check``    — BE Checker: is a query covered? what is the bound? does a
  budget suffice? (Fig. 2(A))
* ``explain``  — the bounded plan with per-fetch bound annotations, or the
  reasons plus the host plan when not covered (Fig. 2(B))
* ``run``      — execute a query and report mode/metrics (Fig. 2(C))
* ``analyze``  — the Fig.-3 performance panel against the comparator
  profiles
* ``discover`` — the offline discovery service: mine an access schema from
  a workload file under a storage budget (Fig. 2(D)), writing JSON
* ``conform``  — verify that the data conforms to an access schema
* ``serve-stats`` — run one query repeatedly through the prepared-query
  serving layer (``repro.serving``) and report per-cache hit/miss/eviction
  counters plus the cold-vs-warm latency split; with ``--threads N`` the
  query is also hammered from N concurrent clients and the per-shard
  lock-wait/contention counters are reported (``--baseline`` compares
  against the single-lock server)

Databases load from a directory of ``*.csv`` files (the format written by
``repro.storage.dump_csv``: ``name:type`` headers) and/or ``*.sql``
scripts (CREATE TABLE / INSERT). Access schemas load from JSON (see
``repro.access.io``). Run ``python -m repro <command> --help`` for flags.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.access.io import dump_schema, load_schema
from repro.access.conformance import check_database
from repro.beas.session import ExecutionOptions, Session
from repro.discovery import DiscoveryObjective, discover
from repro.errors import ReproError
from repro.sql.script import run_script
from repro.storage.csvio import load_csv
from repro.storage.database import Database


def _load_database(data_dir: Path) -> Database:
    """Build a database from every .csv and .sql file under ``data_dir``."""
    if not data_dir.is_dir():
        raise ReproError(f"data directory not found: {data_dir}")
    database = Database(name=data_dir.name)
    for sql_path in sorted(data_dir.glob("*.sql")):
        run_script(database, sql_path.read_text())
    for csv_path in sorted(data_dir.glob("*.csv")):
        table = load_csv(csv_path, table_name=csv_path.stem)
        database.add_table(table)
    if not database.table_names:
        raise ReproError(f"no .csv or .sql files in {data_dir}")
    return database


def _build_session(
    args: argparse.Namespace, **server_options
) -> Session:
    """One Session per CLI invocation (the unified lifecycle)."""
    database = _load_database(Path(args.data))
    schema = load_schema(Path(args.schema)) if args.schema else None
    routing = getattr(args, "routing", None)
    shape_pinned = any(
        getattr(args, flag, None) is not None
        for flag in ("executor", "rows_per_batch", "parallelism")
    )
    if routing is None and shape_pinned:
        # an explicit shape flag (--executor / --rows-per-batch /
        # --parallelism) pins the execution shape for this invocation:
        # ambient BEAS_ROUTING=learned must not reroute it (pass
        # --routing learned to re-enable the router on top)
        routing = "static"
    options = ExecutionOptions(
        executor=getattr(args, "executor", None),
        rows_per_batch=getattr(args, "rows_per_batch", None),
        parallelism=getattr(args, "parallelism", None),
        result_reuse=getattr(args, "result_reuse", None),
        routing=routing,
        storage=getattr(args, "storage", None),
        storage_dir=getattr(args, "storage_dir", None),
        replicas=getattr(args, "replicas", None),
        fleet_port_base=getattr(args, "fleet_port_base", None),
    )
    return Session(
        database,
        schema,
        options=options,
        server_options=server_options or None,
    )


def _read_query(args: argparse.Namespace) -> str:
    if args.sql:
        return args.sql
    if args.file:
        return Path(args.file).read_text()
    raise ReproError("provide a query via --sql or --file")


# --------------------------------------------------------------------------- #
# commands
# --------------------------------------------------------------------------- #
def _cmd_check(args: argparse.Namespace) -> int:
    with _build_session(args) as session:
        decision = session.query(_read_query(args)).decide(budget=args.budget)
        print(decision.coverage.describe())
        return 0 if decision.covered else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    with _build_session(args) as session:
        print(session.explain(_read_query(args)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with _build_session(args) as session:
        result = session.run(
            _read_query(args),
            budget=args.budget,
            approximate_over_budget=args.approximate,
        )
        print("\t".join(result.columns))
        limit = args.limit if args.limit is not None else len(result.rows)
        for row in result.rows[:limit]:
            print("\t".join("NULL" if v is None else str(v) for v in row))
        if limit < len(result.rows):
            print(f"... ({len(result.rows) - limit} more rows)")
        print(f"-- {result.describe()}", file=sys.stderr)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    with _build_session(args) as session:
        analysis = session.beas.analyze_performance(_read_query(args))
        print(analysis.describe())
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    database = _load_database(Path(args.data))
    workload_text = Path(args.workload).read_text()
    queries = [q.strip() for q in workload_text.split(";") if q.strip()]
    result = discover(
        database,
        queries,
        storage_budget=args.storage_budget,
        objective=DiscoveryObjective(args.objective),
        slack=args.slack,
    )
    print(result.describe())
    if args.output:
        dump_schema(result.schema, Path(args.output))
        print(f"wrote {args.output}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    database = _load_database(Path(args.data))
    schema = load_schema(Path(args.schema))
    report = check_database(database, schema)
    if report.conforms:
        print(
            f"conforms: {report.checked_constraints} constraints hold "
            f"(largest group: {report.max_group_size})"
        )
        return 0
    print(f"{len(report.violations)} violations:")
    for violation in report.violations[:20]:
        print(f"  {violation}")
    return 1


def _coerce_param_value(text: str, like) -> object:
    """Coerce CLI text to the type of the template's own constant, so
    ``--param pnum=100`` binds the string ``'100'`` when the template
    compares against a string — an int would silently match nothing."""
    try:
        if isinstance(like, bool):
            return text.strip().lower() in ("true", "1", "yes")
        if isinstance(like, int):
            return int(text)
        if isinstance(like, float):
            return float(text)
    except ValueError as error:
        raise ReproError(
            f"parameter value {text!r} does not match the template's "
            f"{type(like).__name__} constant"
        ) from error
    return text


def _parse_params(raw: Optional[Sequence[str]], slots) -> dict:
    """``--param attr=v`` / ``--param attr=v1,v2`` into a bind mapping."""
    from repro.serving.params import resolve_slot_name

    params: dict = {}
    for item in raw or ():
        if "=" not in item:
            raise ReproError(f"--param expects attr=value, got {item!r}")
        key, _, value = item.partition("=")
        slot = slots[resolve_slot_name(key.strip(), slots)]
        like = slot.values[0] if slot.values else ""
        values = [_coerce_param_value(v, like) for v in value.split(",")]
        params[slot.name] = values[0] if len(values) == 1 else values
    return params


def _cmd_lint(args: argparse.Namespace) -> int:
    # lazy import: the analysis package is never needed on the query path
    from pathlib import Path

    from repro.analysis import all_checkers, render_json, render_text, run_lint

    if args.list_rules:
        for rule, checker in sorted(all_checkers().items()):
            print(f"{rule}: {checker.description}")
        return 0
    paths = [Path(p) for p in args.paths] or None
    try:
        report = run_lint(paths, rules=args.rule or None)
    except KeyError as error:
        raise ReproError(error.args[0]) from None
    rendered = render_json(report) if args.format == "json" else render_text(report)
    print(rendered)
    return 0 if report.clean else 1


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    # shuts pool workers down even when the run errors (Session.close)
    with _build_session(args, sharded=not args.baseline) as session:
        return _serve_stats(args, session)


def _serve_stats(args: argparse.Namespace, session: Session) -> int:
    import threading
    import time

    query = session.query(_read_query(args), name="cli-query")
    params = _parse_params(args.param, query.slots) or None
    if params:
        query = query.bind(params)
    if query.slots:
        print("slots: " + "; ".join(
            query.slots[name].describe() for name in sorted(query.slots)
        ))
    repeats = max(args.repeat, 1)
    latencies: list[float] = []
    cold_result = result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = query.run(budget=args.budget)
        latencies.append(time.perf_counter() - start)
        if cold_result is None:
            cold_result = result
    assert result is not None and cold_result is not None
    print(
        f"{len(result.rows)} rows via {result.mode.value} evaluation; "
        f"last run served_from_cache={result.metrics.served_from_cache}"
    )
    # executor/pool counters of the cold run (cached replays report no
    # execution work): which pipeline answered, how batched, and how
    # much of it ran on engine-pool workers
    metrics = cold_result.metrics
    beas = session.beas
    executor_mode = "columnar" if metrics.rows_per_batch else beas.executor
    line = (
        f"executor: mode={executor_mode} "
        f"rows_per_batch={metrics.rows_per_batch} "
        f"batches={metrics.batches} fetched={metrics.tuples_fetched}"
    )
    if beas.parallelism > 1:
        line += (
            f"; pool: workers={metrics.pool_workers} "
            f"dispatched={metrics.pool_batches} "
            f"wait={metrics.pool_wait_seconds * 1000:.2f} ms"
        )
    if beas.replicas > 1:
        line += (
            f"; fleet: replica={metrics.replica_id} "
            f"wire={metrics.wire_seconds * 1000:.2f} ms"
        )
    if metrics.routed_mode:
        line += (
            f"; routed={metrics.routed_mode}"
            f"{' (explored)' if metrics.routing_explored else ''}"
        )
    print(line)
    warm = latencies[1:] or latencies
    print(
        f"latency: cold {latencies[0] * 1000:.2f} ms, "
        f"warm median {sorted(warm)[len(warm) // 2] * 1000:.3f} ms "
        f"over {len(warm)} runs"
    )
    if args.threads > 1:
        # hammer the steady-state path from N client threads and report
        # aggregate throughput plus the per-shard contention counters
        barrier = threading.Barrier(args.threads)
        errors: list[Exception] = []

        def client() -> None:
            try:
                barrier.wait()
                for _ in range(repeats):
                    query.run(budget=args.budget)
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [
            threading.Thread(target=client) for _ in range(args.threads)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise ReproError(
                f"{len(errors)} of {args.threads} client threads failed; "
                f"first error: {errors[0]}"
            )
        total = args.threads * repeats
        print(
            f"concurrent: {total} executes across {args.threads} threads "
            f"in {elapsed * 1000:.1f} ms "
            f"({total / max(elapsed, 1e-9):,.0f} ops/s aggregate)"
        )
    print(session.stats().describe())
    return 0


# --------------------------------------------------------------------------- #
def _add_common(parser: argparse.ArgumentParser, *, schema_required: bool) -> None:
    parser.add_argument("--data", required=True, help="directory of .csv/.sql files")
    parser.add_argument(
        "--schema",
        required=schema_required,
        help="access schema JSON (see repro.access.io)",
    )


def _add_query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sql", help="the query text")
    parser.add_argument("--file", help="file containing the query")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BEAS — bounded evaluation of SQL queries (SIGMOD 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="BE Checker: coverage + bound (+ budget)")
    _add_common(check, schema_required=True)
    _add_query_args(check)
    check.add_argument("--budget", type=int, help="tuple budget (Fig. 2(A))")
    check.set_defaults(handler=_cmd_check)

    explain = sub.add_parser("explain", help="bounded plan / fallback explanation")
    _add_common(explain, schema_required=True)
    _add_query_args(explain)
    explain.set_defaults(handler=_cmd_explain)

    run = sub.add_parser("run", help="execute a query through BEAS")
    _add_common(run, schema_required=True)
    _add_query_args(run)
    run.add_argument("--budget", type=int)
    run.add_argument(
        "--approximate",
        action="store_true",
        help="over budget: bounded approximation instead of an error",
    )
    run.add_argument("--limit", type=int, help="print at most N rows")
    run.set_defaults(handler=_cmd_run)

    analyze = sub.add_parser("analyze", help="Fig.-3 performance panel")
    _add_common(analyze, schema_required=True)
    _add_query_args(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    discover_cmd = sub.add_parser("discover", help="discover an access schema")
    discover_cmd.add_argument("--data", required=True)
    discover_cmd.add_argument(
        "--workload", required=True, help="file of ';'-separated queries"
    )
    discover_cmd.add_argument("--storage-budget", type=int, dest="storage_budget")
    discover_cmd.add_argument(
        "--objective",
        choices=[o.value for o in DiscoveryObjective],
        default=DiscoveryObjective.COVERAGE.value,
    )
    discover_cmd.add_argument("--slack", type=float, default=1.5)
    discover_cmd.add_argument("--output", help="write the schema JSON here")
    discover_cmd.set_defaults(handler=_cmd_discover)

    conform = sub.add_parser("conform", help="check D |= A")
    _add_common(conform, schema_required=True)
    conform.set_defaults(handler=_cmd_conform)

    serve_stats = sub.add_parser(
        "serve-stats",
        help="repeat a query through the serving layer; report cache stats",
    )
    _add_common(serve_stats, schema_required=True)
    _add_query_args(serve_stats)
    serve_stats.add_argument(
        "--repeat", type=int, default=5, help="number of executions (default 5)"
    )
    serve_stats.add_argument("--budget", type=int)
    serve_stats.add_argument(
        "--param",
        action="append",
        help="bind a template slot, e.g. --param call.date=2016-06-02 "
        "(repeatable; comma-separate multiple values for IN)",
    )
    serve_stats.add_argument(
        "--threads",
        type=int,
        default=1,
        help="also hammer the query from N concurrent client threads and "
        "report aggregate throughput + per-shard lock-wait counters",
    )
    serve_stats.add_argument(
        "--baseline",
        action="store_true",
        help="serve through the single-lock (unsharded) baseline server",
    )
    serve_stats.add_argument(
        "--executor",
        choices=["row", "columnar"],
        help="bounded execution mode (default: BEAS_EXECUTOR or row)",
    )
    serve_stats.add_argument(
        "--rows-per-batch",
        type=int,
        dest="rows_per_batch",
        help="columnar batch size (default: BEAS_ROWS_PER_BATCH or 4096)",
    )
    serve_stats.add_argument(
        "--parallelism",
        type=int,
        help="bounded-pipeline worker processes (>= 2 enables the engine "
        "pool; default: BEAS_PARALLELISM or in-process)",
    )
    serve_stats.add_argument(
        "--result-reuse",
        choices=["exact", "subsume"],
        dest="result_reuse",
        help="result-cache matching: exact fingerprints only, or also "
        "answer from a cached bounded superset "
        "(default: BEAS_RESULT_REUSE or exact)",
    )
    serve_stats.add_argument(
        "--routing",
        choices=["static", "learned"],
        help="executor routing: static (the resolved executor) or learned "
        "(online per-template cost model picks the mode; "
        "default: BEAS_ROUTING or static)",
    )
    serve_stats.add_argument(
        "--storage",
        choices=["memory", "mmap"],
        help="storage engine: memory (rebuild indices on start) or mmap "
        "(persistent memory-mapped segments + WAL; reports the storage "
        "counters in the stats block; default: BEAS_STORAGE or memory)",
    )
    serve_stats.add_argument(
        "--storage-dir",
        dest="storage_dir",
        help="directory for the mmap storage engine (persists across "
        "invocations; default: BEAS_STORAGE_DIR or a private tempdir)",
    )
    serve_stats.add_argument(
        "--replicas",
        type=int,
        help="serving replicas (>= 2 spawns the socket-connected read "
        "fleet and reports its counters in the stats block; default: "
        "BEAS_REPLICAS or in-process)",
    )
    serve_stats.add_argument(
        "--fleet-port-base",
        type=int,
        dest="fleet_port_base",
        help="first replica TCP port on loopback (replica i listens on "
        "port_base + i; default: BEAS_FLEET_PORT_BASE or 7641)",
    )
    serve_stats.set_defaults(handler=_cmd_serve_stats)

    lint = sub.add_parser(
        "lint",
        help="beaslint: run the house static-analysis pass over repro",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files to lint (default: every module of the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default text)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        help="run only this rule (repeatable; default: all registered rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="list registered rules with descriptions and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
