"""AS Catalog: the offline service managing access schemas (paper §3).

The catalog's *Metadata module* maintains (a) the access schema and (b)
statistics, including index sizes, "in a system table as catalog, for query
plan generation and optimization". ``ASCatalog`` owns the built
:class:`~repro.access.index.AccessIndex` objects and exposes exactly that:
constraint lookup for the BE Query Planner and index handles + statistics
for the BE Plan Executor and Optimizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.access.conformance import ConformanceReport, check_database
from repro.access.constraint import AccessConstraint
from repro.access.index import AccessIndex
from repro.access.schema import AccessSchema
from repro.errors import AccessSchemaError, ConformanceError
from repro.storage.database import Database


@dataclass(frozen=True)
class IndexStatistics:
    """One row of the catalog's statistics 'system table'."""

    constraint_name: str
    relation: str
    key_count: int
    entry_count: int
    max_bucket_size: int
    storage_cells: int
    build_seconds: float


class ASCatalog:
    """Registered access schema + built indices + statistics for one database."""

    def __init__(self, database: Database, schema: AccessSchema | None = None):
        self.database = database
        self.schema = schema or AccessSchema(name=f"{database.name}-schema")
        self._indexes: dict[str, AccessIndex] = {}
        self._statistics: dict[str, IndexStatistics] = {}
        #: Monotonic counter bumped on every access-schema change
        #: (register / unregister / bound adjustment). Cached coverage
        #: decisions are valid only while this is unchanged.
        self.schema_generation: int = 0
        if schema is not None:
            self.build_all()

    def note_schema_change(self) -> None:
        """Record an access-schema mutation (invalidates cached decisions)."""
        self.schema_generation += 1

    # ------------------------------------------------------------------ #
    # registration (Metadata module)
    # ------------------------------------------------------------------ #
    def register(self, constraint: AccessConstraint, *, validate: bool = True) -> AccessIndex:
        """Add one constraint and build its index.

        With ``validate=True`` the build fails if the data does not conform
        to the cardinality bound; the constraint is then not registered.
        """
        if constraint.name in self._indexes:
            raise AccessSchemaError(
                f"constraint {constraint.name!r} already registered"
            )
        table = self.database.table(constraint.relation)
        start = time.perf_counter()
        index = AccessIndex(constraint)
        index.build(table, validate=validate)
        elapsed = time.perf_counter() - start
        if constraint.name not in self.schema:
            self.schema.add(constraint)
        self._indexes[constraint.name] = index
        self._statistics[constraint.name] = IndexStatistics(
            constraint_name=constraint.name,
            relation=constraint.relation,
            key_count=index.key_count,
            entry_count=index.entry_count,
            max_bucket_size=index.max_bucket_size,
            storage_cells=index.storage_cells(),
            build_seconds=elapsed,
        )
        self.note_schema_change()
        return index

    def build_all(self, *, validate: bool = True) -> None:
        """Build indices for every constraint of the schema not yet built."""
        for constraint in self.schema:
            if constraint.name not in self._indexes:
                # temporary removal dance: register() re-adds to the schema
                index = AccessIndex(constraint)
                start = time.perf_counter()
                index.build(self.database.table(constraint.relation), validate=validate)
                elapsed = time.perf_counter() - start
                self._indexes[constraint.name] = index
                self._statistics[constraint.name] = IndexStatistics(
                    constraint_name=constraint.name,
                    relation=constraint.relation,
                    key_count=index.key_count,
                    entry_count=index.entry_count,
                    max_bucket_size=index.max_bucket_size,
                    storage_cells=index.storage_cells(),
                    build_seconds=elapsed,
                )

    def install_index(
        self,
        constraint: AccessConstraint,
        index: AccessIndex,
        *,
        build_seconds: float = 0.0,
    ) -> AccessIndex:
        """Install a pre-built index (a persisted segment the storage
        engine mapped) without rebuilding from the base table.

        Unlike :meth:`register` this does **not** bump the schema
        generation — the caller (``MmapStore.try_load``) restores the
        recorded generation afterwards, so snapshot keys and cached
        decisions line up across a warm restart.
        """
        if constraint.name in self._indexes:
            raise AccessSchemaError(
                f"constraint {constraint.name!r} already registered"
            )
        if constraint.name not in self.schema:
            self.schema.add(constraint)
        self._indexes[constraint.name] = index
        self._statistics[constraint.name] = IndexStatistics(
            constraint_name=constraint.name,
            relation=constraint.relation,
            key_count=index.key_count,
            entry_count=index.entry_count,
            max_bucket_size=index.max_bucket_size,
            storage_cells=index.storage_cells(),
            build_seconds=build_seconds,
        )
        return index

    def unregister(self, name: str) -> None:
        """Drop a constraint and its index (user removal, paper §3(d)(ii))."""
        if name in self.schema:
            self.schema.remove(name)
        self._indexes.pop(name, None)
        self._statistics.pop(name, None)
        self.note_schema_change()

    # ------------------------------------------------------------------ #
    # lookups (used by the BE planner/executor)
    # ------------------------------------------------------------------ #
    def index_for(self, constraint: AccessConstraint) -> AccessIndex:
        try:
            return self._indexes[constraint.name]
        except KeyError:
            raise AccessSchemaError(
                f"no index built for constraint {constraint.name!r}"
            ) from None

    def constraints_for(self, relation: str) -> list[AccessConstraint]:
        return self.schema.constraints_for(relation)

    def index_map(self) -> dict[str, AccessIndex]:
        """A shallow snapshot of every built index, keyed by constraint
        name. The engine pool pickles this as the per-worker warm catalog
        snapshot — workers answer fetches exclusively from these indices
        and physically cannot scan base tables."""
        return dict(self._indexes)

    def statistics(self) -> list[IndexStatistics]:
        """The catalog's statistics table, one row per index."""
        return list(self._statistics.values())

    def statistics_for(self, name: str) -> IndexStatistics:
        try:
            return self._statistics[name]
        except KeyError:
            raise AccessSchemaError(f"no statistics for constraint {name!r}") from None

    def total_storage_cells(self) -> int:
        return sum(s.storage_cells for s in self._statistics.values())

    def statistics_table(self) -> "Table":
        """The statistics as a real relation — the paper's Metadata module
        keeps index statistics "in a system table as catalog"."""
        from repro.catalog.schema import TableSchema
        from repro.catalog.types import DataType
        from repro.storage.table import Table

        schema = TableSchema(
            "as_catalog",
            [
                ("constraint_name", DataType.STRING),
                ("relation", DataType.STRING),
                ("x_attrs", DataType.STRING),
                ("y_attrs", DataType.STRING),
                ("n", DataType.INT),
                ("key_count", DataType.INT),
                ("entry_count", DataType.INT),
                ("max_bucket_size", DataType.INT),
                ("storage_cells", DataType.INT),
            ],
            keys=[("constraint_name",)],
        )
        table = Table(schema)
        for constraint in self.schema:
            stats = self._statistics.get(constraint.name)
            if stats is None:
                continue
            table.insert(
                (
                    constraint.name,
                    constraint.relation,
                    ",".join(constraint.x),
                    ",".join(constraint.y),
                    constraint.n,
                    stats.key_count,
                    stats.entry_count,
                    stats.max_bucket_size,
                    stats.storage_cells,
                )
            )
        return table

    # ------------------------------------------------------------------ #
    def verify_conformance(self) -> ConformanceReport:
        """Re-check ``D |= A`` from the base data (maintenance hook)."""
        return check_database(self.database, self.schema)

    def require_conformance(self) -> None:
        report = self.verify_conformance()
        if not report.conforms:
            raise ConformanceError(
                f"{len(report.violations)} access-constraint violations",
                report.violations,
            )

    def __iter__(self) -> Iterator[AccessConstraint]:
        return iter(self.schema)

    def __repr__(self) -> str:
        return (
            f"ASCatalog({self.database.name}: {len(self.schema)} constraints, "
            f"{len(self._indexes)} indices)"
        )
