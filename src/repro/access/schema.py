"""Access schemas: named sets of access constraints over a database schema."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.access.constraint import AccessConstraint
from repro.catalog.schema import DatabaseSchema
from repro.errors import AccessSchemaError


class AccessSchema:
    """A set of access constraints ``A`` over a database schema ``R``."""

    def __init__(self, constraints: Iterable[AccessConstraint] = (), name: str = "A"):
        self.name = name
        self._constraints: dict[str, AccessConstraint] = {}
        for constraint in constraints:
            self.add(constraint)

    # ------------------------------------------------------------------ #
    def add(self, constraint: AccessConstraint) -> AccessConstraint:
        if constraint.name in self._constraints:
            raise AccessSchemaError(
                f"constraint named {constraint.name!r} already registered"
            )
        self._constraints[constraint.name] = constraint
        return constraint

    def remove(self, name: str) -> AccessConstraint:
        try:
            return self._constraints.pop(name)
        except KeyError:
            raise AccessSchemaError(f"no constraint named {name!r}") from None

    def get(self, name: str) -> AccessConstraint:
        try:
            return self._constraints[name]
        except KeyError:
            raise AccessSchemaError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------ #
    def constraints_for(self, relation: str) -> list[AccessConstraint]:
        """All constraints on one relation (planning iterates these)."""
        return [c for c in self._constraints.values() if c.relation == relation]

    def relations(self) -> set[str]:
        return {c.relation for c in self._constraints.values()}

    def validate_against(self, schema: DatabaseSchema) -> None:
        """Check every constraint references existing tables/columns."""
        for constraint in self._constraints.values():
            table_schema = schema.table(constraint.relation)
            constraint.validate_against(table_schema)

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[AccessConstraint]:
        return iter(self._constraints.values())

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, name: str) -> bool:
        return name in self._constraints

    def __repr__(self) -> str:
        return f"AccessSchema({self.name}: {len(self)} constraints)"

    def describe(self) -> str:
        """Multi-line listing, one constraint per line (demo portal style)."""
        return "\n".join(str(c) for c in self._constraints.values())
