"""Conformance checking: does ``D |= A`` hold?

A relation instance conforms to ``R(X -> Y, N)`` when every X-value has at
most N distinct Y-values (paper §2). The checker reports *all* violations
(each offending X-value with its actual count), which the maintenance
module uses to propose adjusted bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.storage.database import Database
from repro.storage.table import Table


@dataclass(frozen=True)
class Violation:
    """One X-value whose distinct-Y count exceeds the declared bound."""

    constraint: AccessConstraint
    x_value: tuple
    actual: int

    def __str__(self) -> str:
        return (
            f"{self.constraint.name}: X={self.x_value!r} has {self.actual} "
            f"distinct Y-values (bound {self.constraint.n})"
        )


@dataclass
class ConformanceReport:
    """Outcome of checking one constraint (or a whole schema) against data."""

    violations: list[Violation] = field(default_factory=list)
    checked_constraints: int = 0
    max_group_size: int = 0  # largest distinct-Y group seen anywhere

    @property
    def conforms(self) -> bool:
        return not self.violations

    def merge(self, other: "ConformanceReport") -> None:
        self.violations.extend(other.violations)
        self.checked_constraints += other.checked_constraints
        self.max_group_size = max(self.max_group_size, other.max_group_size)

    def tightest_bound(self) -> int:
        """Smallest N for which the checked data would conform."""
        return self.max_group_size


def check_constraint(table: Table, constraint: AccessConstraint) -> ConformanceReport:
    """Check one constraint against one table, reporting every violation."""
    constraint.validate_against(table.schema)
    x_positions = table.schema.positions(constraint.x)
    y_positions = table.schema.positions(constraint.y)
    groups: dict[tuple, set[tuple]] = {}
    for row in table.rows:
        key = tuple(row[i] for i in x_positions)
        groups.setdefault(key, set()).add(tuple(row[i] for i in y_positions))

    report = ConformanceReport(checked_constraints=1)
    for key, y_values in groups.items():
        size = len(y_values)
        report.max_group_size = max(report.max_group_size, size)
        if size > constraint.n:
            report.violations.append(Violation(constraint, key, size))
    return report


def check_database(database: Database, schema: AccessSchema) -> ConformanceReport:
    """Check ``D |= A``: every constraint of ``schema`` against ``database``."""
    report = ConformanceReport()
    for constraint in schema:
        table = database.table(constraint.relation)
        report.merge(check_constraint(table, constraint))
    return report
