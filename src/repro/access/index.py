"""The modified hash index backing an access constraint.

Paper §3 (AS Catalog, Discovery): *"its index ... is a modified hash index
such that (a) it takes attributes X as the key; and (b) each key value ā
points to a bucket D_Y(X = ā), the set of at most N distinct Y-values in D
corresponding to ā."*

Buckets here additionally store a support count per distinct Y-value (how
many base rows project to it), which is what makes **incremental
maintenance** exact under deletions: a Y-value leaves the bucket only when
its last supporting row is deleted (paper §3, Maintenance module).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.access.constraint import AccessConstraint
from repro.errors import AccessSchemaError, ConformanceError
from repro.storage.codec import canonical_key, is_nan
from repro.storage.table import Table

Key = tuple
YValue = tuple


class AccessIndex:
    """Hash index from X-values to buckets of distinct Y-values."""

    def __init__(self, constraint: AccessConstraint, table: Table | None = None):
        self.constraint = constraint
        self._buckets: dict[Key, dict[YValue, int]] = {}
        self._x_positions: tuple[int, ...] = ()
        self._y_positions: tuple[int, ...] = ()
        self._built_from: str | None = None
        if table is not None:
            self.build(table)

    # ------------------------------------------------------------------ #
    # construction and maintenance
    # ------------------------------------------------------------------ #
    def build(self, table: Table, *, validate: bool = True) -> "AccessIndex":
        """(Re)build the index from ``table``.

        With ``validate=True`` (default) a bucket growing past ``N``
        aborts the build with :class:`~repro.errors.ConformanceError` —
        the dataset does not conform to the constraint.
        """
        self.constraint.validate_against(table.schema)
        self._x_positions = table.schema.positions(self.constraint.x)
        self._y_positions = table.schema.positions(self.constraint.y)
        self._buckets = {}
        self._built_from = table.schema.name
        for row in table.rows:
            self._add(row, validate=validate)
        return self

    def _key_of(self, row: Sequence[Any]) -> Key:
        # NaN components are canonicalised to one shared object so that
        # bucket membership and support counts stay deterministic (dict
        # identity short-circuit); see repro.storage.codec for the 3VL
        # decision. Equality *lookups* still never match NaN (fetch).
        return canonical_key(row[i] for i in self._x_positions)

    def _y_of(self, row: Sequence[Any]) -> YValue:
        return canonical_key(row[i] for i in self._y_positions)

    def _add(self, row: Sequence[Any], *, validate: bool) -> None:
        key = self._key_of(row)
        bucket = self._buckets.setdefault(key, {})
        y_value = self._y_of(row)
        if y_value in bucket:
            bucket[y_value] += 1
            return
        if validate and len(bucket) >= self.constraint.n:
            raise ConformanceError(
                f"constraint {self.constraint.name} violated: X-value {key!r} "
                f"has more than N={self.constraint.n} distinct Y-values"
            )
        bucket[y_value] = 1

    def insert_row(self, row: Sequence[Any], *, validate: bool = True) -> None:
        """Incrementally account for one inserted base row."""
        if self._built_from is None:
            raise AccessSchemaError("index has not been built yet")
        self._add(row, validate=validate)

    def delete_row(self, row: Sequence[Any]) -> None:
        """Incrementally account for one deleted base row."""
        if self._built_from is None:
            raise AccessSchemaError("index has not been built yet")
        key = self._key_of(row)
        bucket = self._buckets.get(key)
        y_value = self._y_of(row)
        if bucket is None or y_value not in bucket:
            raise AccessSchemaError(
                f"cannot delete: row not present in index {self.constraint.name}"
            )
        bucket[y_value] -= 1
        if bucket[y_value] == 0:
            del bucket[y_value]
        if not bucket:
            del self._buckets[key]

    # ------------------------------------------------------------------ #
    # lookups (the fetch primitive)
    # ------------------------------------------------------------------ #
    def fetch(self, key: Key) -> list[YValue]:
        """Return the bucket ``D_Y(X = key)``: at most N distinct Y-values.

        A key containing NULL never matches: ``fetch`` implements the
        equality ``X = key``, and under SQL's three-valued logic an
        equality against NULL is UNKNOWN, not TRUE — even when base rows
        with NULL X-values exist (their buckets are maintained for
        storage accounting but are unreachable by equality lookup).
        NaN components behave the same way: IEEE equality on NaN is
        never TRUE, so a NaN-bearing key matches nothing even though
        NaN rows keep canonicalised buckets for accounting.
        """
        key = tuple(key)
        if any(part is None or is_nan(part) for part in key):
            return []
        bucket = self._buckets.get(key)
        if bucket is None:
            return []
        return list(bucket)

    def fetch_many(self, keys: Iterable[Key]) -> list[YValue]:
        """Union of buckets for ``keys``, deduplicated, order-preserving."""
        seen: set[YValue] = set()
        out: list[YValue] = []
        for key in keys:
            for y_value in self.fetch(key):
                if y_value not in seen:
                    seen.add(y_value)
                    out.append(y_value)
        return out

    def __contains__(self, key: Key) -> bool:
        """Storage introspection (canonicalised), *not* equality lookup."""
        return canonical_key(key) in self._buckets

    def __setstate__(self, state: dict) -> None:
        # NaN canonicalisation does not survive the pickle wire — every
        # unpickled NaN is a fresh object — so buckets are re-canonicalised
        # on arrival (the engine pool ships indices to workers pickled)
        buckets = state.get("_buckets")
        if buckets:
            state = dict(state)
            state["_buckets"] = {
                canonical_key(key): {
                    canonical_key(y_value): count
                    for y_value, count in bucket.items()
                }
                for key, bucket in buckets.items()
            }
        self.__dict__.update(state)

    def keys(self) -> Iterator[Key]:
        return iter(self._buckets)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def key_count(self) -> int:
        return len(self._buckets)

    @property
    def entry_count(self) -> int:
        """Total distinct (X, Y) pairs stored — the index's logical size."""
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def max_bucket_size(self) -> int:
        if not self._buckets:
            return 0
        return max(len(bucket) for bucket in self._buckets.values())

    def storage_cells(self) -> int:
        """Storage estimate in value cells (keys + entries), used by the
        discovery module's storage budget."""
        key_width = len(self.constraint.x)
        y_width = len(self.constraint.y)
        return self.key_count * key_width + self.entry_count * y_width

    def snapshot(self) -> dict[Key, dict[YValue, int]]:
        """Deep copy of the buckets (tests compare incremental vs rebuild)."""
        return {key: dict(bucket) for key, bucket in self._buckets.items()}

    def __repr__(self) -> str:
        return (
            f"AccessIndex({self.constraint.name}: {self.key_count} keys, "
            f"{self.entry_count} entries)"
        )
