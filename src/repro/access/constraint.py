"""Access constraints ``R(X -> Y, N)``.

Example (paper, Example 1): ``call({pnum, date} -> {recnum, region}, 500)``
states that each number calls at most 500 distinct numbers per region per
day, and that an index can retrieve those (recnum, region) pairs given a
(pnum, date) key by accessing at most 500 tuples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.schema import TableSchema
from repro.errors import AccessSchemaError

_counter = itertools.count(1)


def _fresh_name() -> str:
    return f"psi{next(_counter)}"


@dataclass(frozen=True)
class AccessConstraint:
    """One access constraint ``R(X -> Y, N)``.

    ``x`` and ``y`` are stored as sorted tuples so the constraint is
    hashable and its index key order is deterministic. ``X`` may be empty
    (the constraint then bounds the whole relation: at most ``N`` distinct
    ``Y``-values overall), matching the paper's foundation work where
    ``R(() -> Y, N)`` encodes a bounded relation.
    """

    relation: str
    x: tuple[str, ...]
    y: tuple[str, ...]
    n: int
    name: str = field(default_factory=_fresh_name, compare=False)

    def __init__(
        self,
        relation: str,
        x: Iterable[str],
        y: Iterable[str],
        n: int,
        name: str | None = None,
    ):
        x_tuple = tuple(sorted(set(x)))
        y_tuple = tuple(sorted(set(y)))
        if not y_tuple:
            raise AccessSchemaError("an access constraint needs at least one Y attribute")
        if set(x_tuple) & set(y_tuple):
            overlap = sorted(set(x_tuple) & set(y_tuple))
            raise AccessSchemaError(
                f"X and Y attributes must be disjoint (overlap: {overlap})"
            )
        if n < 0:
            raise AccessSchemaError("the cardinality bound N must be non-negative")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "x", x_tuple)
        object.__setattr__(self, "y", y_tuple)
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "name", name or _fresh_name())

    # ------------------------------------------------------------------ #
    @property
    def attributes(self) -> frozenset[str]:
        """All attributes the constraint's index exposes (``X ∪ Y``)."""
        return frozenset(self.x) | frozenset(self.y)

    def validate_against(self, schema: TableSchema) -> None:
        """Check that the constraint's attributes exist in ``schema``."""
        if schema.name != self.relation:
            raise AccessSchemaError(
                f"constraint {self.name} targets {self.relation!r}, "
                f"not {schema.name!r}"
            )
        for attr in self.x + self.y:
            if attr not in schema:
                raise AccessSchemaError(
                    f"constraint {self.name}: attribute {attr!r} is not a "
                    f"column of {self.relation!r}"
                )

    def covers_key_of(self, schema: TableSchema) -> bool:
        """True when ``X ∪ Y`` contains a declared candidate key of ``R``.

        Key-covering fetches return partial tuples in bijection with rows,
        which makes bag-semantics aggregates exact (DESIGN.md).
        """
        return schema.has_key_within(self.attributes)

    def __str__(self) -> str:
        x_text = "{" + ", ".join(self.x) + "}" if self.x else "()"
        y_text = "{" + ", ".join(self.y) + "}"
        return f"{self.name}: {self.relation}({x_text} -> {y_text}, {self.n})"
