"""JSON (de)serialisation of access schemas.

The AS Catalog's metadata module persists access schemas per application
(paper §3); the on-disk format here is a plain JSON document so schemas
can be versioned, reviewed, and shipped next to the data:

.. code-block:: json

    {
      "name": "A0",
      "constraints": [
        {"name": "psi1", "relation": "call",
         "x": ["pnum", "date"], "y": ["recnum", "region"], "n": 500}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.errors import AccessSchemaError


def schema_to_dict(schema: AccessSchema) -> dict:
    """Plain-dict form of an access schema (JSON-ready)."""
    return {
        "name": schema.name,
        "constraints": [
            {
                "name": c.name,
                "relation": c.relation,
                "x": list(c.x),
                "y": list(c.y),
                "n": c.n,
            }
            for c in schema
        ],
    }


def schema_from_dict(data: dict) -> AccessSchema:
    """Rebuild an access schema from its dict form (validating shape)."""
    if not isinstance(data, dict) or "constraints" not in data:
        raise AccessSchemaError(
            "access schema document must be an object with 'constraints'"
        )
    constraints = []
    for i, entry in enumerate(data["constraints"]):
        try:
            constraints.append(
                AccessConstraint(
                    relation=entry["relation"],
                    x=entry.get("x", []),
                    y=entry["y"],
                    n=int(entry["n"]),
                    name=entry.get("name"),
                )
            )
        except (KeyError, TypeError) as exc:
            raise AccessSchemaError(
                f"malformed constraint entry #{i}: {entry!r}"
            ) from exc
    return AccessSchema(constraints, name=data.get("name", "A"))


def dump_schema(schema: AccessSchema, destination: Union[str, Path, TextIO]) -> None:
    """Write ``schema`` as JSON."""
    document = schema_to_dict(schema)
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(json.dumps(document, indent=2) + "\n")
    else:
        json.dump(document, destination, indent=2)


def load_schema(source: Union[str, Path, TextIO]) -> AccessSchema:
    """Read an access schema from JSON text, a path, or a file object."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AccessSchemaError(f"invalid access schema JSON: {exc}") from exc
    return schema_from_dict(data)
