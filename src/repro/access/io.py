"""JSON (de)serialisation of access schemas.

The AS Catalog's metadata module persists access schemas per application
(paper §3); the on-disk format here is a plain JSON document so schemas
can be versioned, reviewed, and shipped next to the data:

.. code-block:: json

    {
      "name": "A0",
      "constraints": [
        {"name": "psi1", "relation": "call",
         "x": ["pnum", "date"], "y": ["recnum", "region"], "n": 500}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.access.constraint import AccessConstraint
from repro.access.schema import AccessSchema
from repro.errors import AccessSchemaError


def schema_to_dict(schema: AccessSchema) -> dict:
    """Plain-dict form of an access schema (JSON-ready)."""
    return {
        "name": schema.name,
        "constraints": [
            {
                "name": c.name,
                "relation": c.relation,
                "x": list(c.x),
                "y": list(c.y),
                "n": c.n,
            }
            for c in schema
        ],
    }


def _attribute_list(entry: dict, field: str, i: int, *, required: bool) -> list:
    """Validate an ``x``/``y`` attribute list: a list of strings."""
    if field not in entry:
        if not required:
            return []
        raise AccessSchemaError(
            f"constraint entry #{i} is missing required field {field!r}: {entry!r}"
        )
    value = entry[field]
    if isinstance(value, (str, bytes)) or not isinstance(value, list):
        raise AccessSchemaError(
            f"constraint entry #{i}: {field!r} must be a list of attribute "
            f"names, got {value!r}"
        )
    for item in value:
        if not isinstance(item, str):
            raise AccessSchemaError(
                f"constraint entry #{i}: {field!r} contains a non-string "
                f"attribute {item!r}"
            )
    return value


def _bound(entry: dict, i: int) -> int:
    """Validate ``n``: an actual integer — not a bool, not a float.

    ``int(entry["n"])`` used to run here, which silently truncated
    ``500.9`` to 500 and accepted ``true`` as 1 — both corrupt the
    catalog's conformance bound instead of failing the load.
    """
    if "n" not in entry:
        raise AccessSchemaError(
            f"constraint entry #{i} is missing required field 'n': {entry!r}"
        )
    n = entry["n"]
    if isinstance(n, bool) or not isinstance(n, int):
        raise AccessSchemaError(
            f"constraint entry #{i}: 'n' must be an integer, got {n!r}"
        )
    return n


def schema_from_dict(data: dict) -> AccessSchema:
    """Rebuild an access schema from its dict form (validating shape)."""
    if not isinstance(data, dict) or "constraints" not in data:
        raise AccessSchemaError(
            "access schema document must be an object with 'constraints'"
        )
    constraints = []
    seen_names: dict[str, int] = {}
    for i, entry in enumerate(data["constraints"]):
        if not isinstance(entry, dict):
            raise AccessSchemaError(
                f"constraint entry #{i} must be an object, got {entry!r}"
            )
        relation = entry.get("relation")
        if not isinstance(relation, str) or not relation:
            raise AccessSchemaError(
                f"constraint entry #{i}: 'relation' must be a non-empty "
                f"string, got {relation!r}"
            )
        name = entry.get("name")
        if name is not None:
            if not isinstance(name, str) or not name:
                raise AccessSchemaError(
                    f"constraint entry #{i}: 'name' must be a non-empty "
                    f"string when given, got {name!r}"
                )
            if name in seen_names:
                raise AccessSchemaError(
                    f"constraint entry #{i}: duplicate constraint name "
                    f"{name!r} (first used by entry #{seen_names[name]})"
                )
            seen_names[name] = i
        try:
            constraints.append(
                AccessConstraint(
                    relation=relation,
                    x=_attribute_list(entry, "x", i, required=False),
                    y=_attribute_list(entry, "y", i, required=True),
                    n=_bound(entry, i),
                    name=name,
                )
            )
        except AccessSchemaError as exc:
            if str(exc).startswith("constraint entry #"):
                raise
            raise AccessSchemaError(
                f"malformed constraint entry #{i}: {exc}"
            ) from exc
        except (KeyError, TypeError) as exc:
            raise AccessSchemaError(
                f"malformed constraint entry #{i}: {entry!r}"
            ) from exc
    return AccessSchema(constraints, name=data.get("name", "A"))


def dump_schema(schema: AccessSchema, destination: Union[str, Path, TextIO]) -> None:
    """Write ``schema`` as JSON."""
    document = schema_to_dict(schema)
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(json.dumps(document, indent=2) + "\n")
    else:
        json.dump(document, destination, indent=2)


def load_schema(source: Union[str, Path, TextIO]) -> AccessSchema:
    """Read an access schema from JSON text, a path, or a file object."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AccessSchemaError(f"invalid access schema JSON: {exc}") from exc
    return schema_from_dict(data)
