"""Access schema subsystem (S5): constraints, indices, conformance, catalog.

An access constraint ``R(X -> Y, N)`` [paper §2] combines a cardinality
constraint — every ``X``-value has at most ``N`` distinct ``Y``-values in
``R`` — with an index that retrieves those ``Y``-values given an
``X``-value while accessing at most ``N`` tuples. An access schema is a
set of such constraints; the AS Catalog manages them (metadata, discovery,
maintenance) for each application.
"""

from repro.access.constraint import AccessConstraint
from repro.access.index import AccessIndex
from repro.access.schema import AccessSchema
from repro.access.conformance import ConformanceReport, Violation, check_constraint, check_database
from repro.access.catalog import ASCatalog, IndexStatistics
from repro.access.io import dump_schema, load_schema, schema_from_dict, schema_to_dict

__all__ = [
    "AccessConstraint",
    "AccessIndex",
    "AccessSchema",
    "ASCatalog",
    "IndexStatistics",
    "ConformanceReport",
    "Violation",
    "check_constraint",
    "check_database",
    "dump_schema",
    "load_schema",
    "schema_from_dict",
    "schema_to_dict",
]
