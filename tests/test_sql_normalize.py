"""Unit tests for the SPJA normaliser."""

import pytest

from repro.errors import (
    AmbiguousColumnError,
    NormalizationError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.sql import ast
from repro.sql.normalize import Attribute, normalize
from repro.sql.parser import parse

from tests.conftest import example1_schema


def norm(sql: str):
    return normalize(parse(sql), example1_schema())


class TestOccurrences:
    def test_bindings_from_aliases(self):
        cq = norm("SELECT c.region FROM call c, business b WHERE b.pnum = c.pnum")
        assert cq.occurrences == {"c": "call", "b": "business"}

    def test_bindings_default_to_table_names(self):
        cq = norm("SELECT call.region FROM call")
        assert cq.occurrences == {"call": "call"}

    def test_duplicate_binding_rejected(self):
        with pytest.raises(NormalizationError):
            norm("SELECT call.region FROM call, call")

    def test_self_join_with_aliases(self):
        cq = norm(
            "SELECT a.recnum FROM call a, call b WHERE a.recnum = b.pnum"
        )
        assert set(cq.occurrences) == {"a", "b"}

    def test_join_on_condition_merged(self):
        cq = norm("SELECT c.region FROM call c JOIN business b ON b.pnum = c.pnum")
        assert (Attribute("b", "pnum"), Attribute("c", "pnum")) in cq.equalities

    def test_left_join_rejected(self):
        with pytest.raises(NormalizationError):
            norm("SELECT c.region FROM call c LEFT JOIN business b ON b.pnum = c.pnum")

    def test_select_without_from_rejected(self):
        with pytest.raises(NormalizationError):
            normalize(parse("SELECT 1"), example1_schema())


class TestResolution:
    def test_unqualified_unique_column(self):
        cq = norm("SELECT recnum FROM call")
        assert cq.output[0].expression == ast.ColumnRef("recnum", table="call")

    def test_ambiguous_column_rejected(self):
        with pytest.raises(AmbiguousColumnError):
            norm("SELECT region FROM call, business")

    def test_unknown_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            norm("SELECT nonsense FROM call")

    def test_unknown_table_qualifier_rejected(self):
        with pytest.raises(UnknownTableError):
            norm("SELECT zz.region FROM call")

    def test_star_expansion(self):
        cq = norm("SELECT * FROM business")
        assert cq.output_names == ["pnum", "type", "region"]

    def test_qualified_star_expansion(self):
        cq = norm("SELECT b.* FROM business b, call c")
        assert cq.output_names == ["pnum", "type", "region"]

    def test_output_alias(self):
        cq = norm("SELECT region AS r FROM call")
        assert cq.output_names == ["r"]

    def test_generated_name_for_expression(self):
        cq = norm("SELECT call_id + 1 FROM call")
        assert cq.output_names == ["col1"]


class TestConjunctClassification:
    def test_constant_selection(self):
        cq = norm("SELECT region FROM call WHERE pnum = '5'")
        assert cq.selections[Attribute("call", "pnum")] == ("5",)

    def test_reversed_constant(self):
        cq = norm("SELECT region FROM call WHERE '5' = pnum")
        assert cq.selections[Attribute("call", "pnum")] == ("5",)

    def test_in_list_selection(self):
        cq = norm("SELECT region FROM call WHERE pnum IN ('5', '6')")
        assert cq.selections[Attribute("call", "pnum")] == ("5", "6")

    def test_contradictory_selections_intersect(self):
        cq = norm("SELECT region FROM call WHERE pnum = '5' AND pnum = '6'")
        assert cq.selections[Attribute("call", "pnum")] == ()

    def test_equality_atom(self):
        cq = norm("SELECT c.region FROM call c, business b WHERE c.pnum = b.pnum")
        assert (Attribute("c", "pnum"), Attribute("b", "pnum")) in cq.equalities

    def test_range_is_residual_filter(self):
        cq = norm("SELECT region FROM call WHERE date >= '2016-01-01'")
        assert len(cq.filters) == 1 and not cq.selections

    def test_or_is_residual_filter(self):
        cq = norm("SELECT region FROM call WHERE pnum = '5' OR pnum = '6'")
        assert len(cq.filters) == 1 and not cq.selections

    def test_not_in_is_residual(self):
        cq = norm("SELECT region FROM call WHERE pnum NOT IN ('5')")
        assert len(cq.filters) == 1

    def test_null_equality_is_residual(self):
        # x = NULL is never a selection (it is UNKNOWN in SQL)
        cq = norm("SELECT region FROM call WHERE pnum = NULL")
        assert not cq.selections and len(cq.filters) == 1


class TestAggregation:
    def test_aggregates_detected(self):
        cq = norm("SELECT COUNT(*) FROM call")
        assert cq.has_aggregates and len(cq.aggregates) == 1

    def test_group_by_attributes(self):
        cq = norm("SELECT region, COUNT(*) FROM call GROUP BY region")
        assert cq.group_by == [Attribute("call", "region")]

    def test_non_grouped_column_rejected(self):
        with pytest.raises(NormalizationError):
            norm("SELECT region, COUNT(*) FROM call")

    def test_group_by_expression_rejected(self):
        with pytest.raises(NormalizationError):
            norm("SELECT COUNT(*) FROM call GROUP BY call_id + 1")

    def test_having_without_aggregation_rejected(self):
        with pytest.raises(NormalizationError):
            norm("SELECT region FROM call HAVING COUNT(*) > 1")

    def test_order_by_alias_stays_unqualified(self):
        cq = norm(
            "SELECT region, COUNT(*) AS cnt FROM call GROUP BY region ORDER BY cnt"
        )
        order_expr = cq.order_by[0].expression
        assert isinstance(order_expr, ast.ColumnRef) and order_expr.table is None


class TestNeededAttributes:
    def test_attributes_of_collects_everything(self):
        cq = norm(
            """
            SELECT c.region FROM call c, business b
            WHERE b.pnum = c.pnum AND b.type = 'bank' AND c.date >= '2016-01-01'
            """
        )
        assert cq.attributes_of("c") == {"region", "pnum", "date"}
        assert cq.attributes_of("b") == {"pnum", "type"}

    def test_all_attributes(self):
        cq = norm("SELECT region FROM call WHERE pnum = '1'")
        assert cq.all_attributes() == {
            Attribute("call", "region"),
            Attribute("call", "pnum"),
        }

    def test_order_by_base_attr_counts_as_needed(self):
        cq = norm("SELECT region FROM call ORDER BY date")
        assert "date" in cq.attributes_of("call")


class TestBetweenExpansion:
    """BETWEEN with non-NULL literal bounds expands to its range
    conjuncts so both spellings classify (and plan) identically."""

    @staticmethod
    def _filter_texts(cq):
        from repro.sql.printer import expression_to_sql

        return sorted(expression_to_sql(f.expression) for f in cq.filters)

    def test_between_matches_conjunct_spelling(self):
        a = norm("SELECT region FROM call WHERE date BETWEEN 'a' AND 'b'")
        b = norm("SELECT region FROM call WHERE date >= 'a' AND date <= 'b'")
        assert len(a.filters) == 2
        assert self._filter_texts(a) == self._filter_texts(b)

    def test_not_between_matches_disjunct_spelling(self):
        a = norm("SELECT region FROM call WHERE date NOT BETWEEN 'a' AND 'b'")
        b = norm("SELECT region FROM call WHERE date < 'a' OR date > 'b'")
        assert len(a.filters) == 1
        assert self._filter_texts(a) == self._filter_texts(b)

    def test_null_bound_stays_a_between_filter(self):
        # with a NULL bound the conjunct form is not truth-value
        # equivalent (engine BETWEEN: any NULL operand -> UNKNOWN), so
        # the Between node must survive normalisation untouched
        cq = norm("SELECT region FROM call WHERE date BETWEEN NULL AND 'b'")
        assert len(cq.filters) == 1
        assert isinstance(cq.filters[0].expression, ast.Between)

    def test_column_bound_stays_a_between_filter(self):
        cq = norm(
            "SELECT region FROM call WHERE date BETWEEN recnum AND 'b'"
        )
        assert len(cq.filters) == 1
        assert isinstance(cq.filters[0].expression, ast.Between)
