"""Unit tests for repro.catalog.types."""

import pytest

from repro.catalog.types import DataType, coerce_value, infer_type, is_compatible
from repro.errors import TypeMismatchError


class TestCoerceInt:
    def test_int_passthrough(self):
        assert coerce_value(42, DataType.INT) == 42

    def test_string_digits(self):
        assert coerce_value("123", DataType.INT) == 123

    def test_negative_string(self):
        assert coerce_value("-7", DataType.INT) == -7

    def test_whole_float(self):
        assert coerce_value(3.0, DataType.INT) == 3

    def test_fractional_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(3.5, DataType.INT)

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", DataType.INT)

    def test_bool_coerces_to_int(self):
        assert coerce_value(True, DataType.INT) == 1

    def test_none_passes_through(self):
        assert coerce_value(None, DataType.INT) is None


class TestCoerceFloat:
    def test_float_passthrough(self):
        assert coerce_value(2.5, DataType.FLOAT) == 2.5

    def test_int_widens(self):
        assert coerce_value(2, DataType.FLOAT) == 2.0

    def test_string_parses(self):
        assert coerce_value(" 3.25 ", DataType.FLOAT) == 3.25

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("x.y", DataType.FLOAT)


class TestCoerceString:
    def test_passthrough(self):
        assert coerce_value("hi", DataType.STRING) == "hi"

    def test_int_stringified(self):
        assert coerce_value(5, DataType.STRING) == "5"


class TestCoerceBool:
    @pytest.mark.parametrize("text", ["true", "T", "1", "yes", "YES"])
    def test_truthy_literals(self, text):
        assert coerce_value(text, DataType.BOOL) is True

    @pytest.mark.parametrize("text", ["false", "f", "0", "no"])
    def test_falsy_literals(self, text):
        assert coerce_value(text, DataType.BOOL) is False

    def test_int_one(self):
        assert coerce_value(1, DataType.BOOL) is True

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", DataType.BOOL)


class TestCoerceDate:
    def test_normalises_padding(self):
        assert coerce_value("2016-6-1", DataType.DATE) == "2016-06-01"

    def test_valid_date(self):
        assert coerce_value("2016-06-15", DataType.DATE) == "2016-06-15"

    def test_rejects_month_13(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("2016-13-01", DataType.DATE)

    def test_rejects_non_date(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("June 1", DataType.DATE)

    def test_rejects_non_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(20160601, DataType.DATE)


class TestIsCompatible:
    def test_none_always_compatible(self):
        for dtype in DataType:
            assert is_compatible(None, dtype)

    def test_bool_is_not_int(self):
        assert not is_compatible(True, DataType.INT)

    def test_int_is_float_compatible(self):
        assert is_compatible(3, DataType.FLOAT)

    def test_string_not_int(self):
        assert not is_compatible("3", DataType.INT)

    def test_date_requires_iso(self):
        assert is_compatible("2016-06-01", DataType.DATE)
        assert not is_compatible("06/01/2016", DataType.DATE)


class TestInferType:
    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOL

    def test_int(self):
        assert infer_type(7) is DataType.INT

    def test_float(self):
        assert infer_type(7.5) is DataType.FLOAT

    def test_date_string(self):
        assert infer_type("2016-06-01") is DataType.DATE

    def test_plain_string(self):
        assert infer_type("hello") is DataType.STRING
