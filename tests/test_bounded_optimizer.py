"""BE Plan Optimizer tests: partially bounded plans."""

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    ASCatalog,
    BEPlanOptimizer,
    ConventionalEngine,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)


def schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            TableSchema(
                "big",
                [
                    ("k", DataType.STRING),
                    ("grp", DataType.STRING),
                    ("val", DataType.INT),
                ],
            ),
            TableSchema(
                "dim",
                [
                    ("k", DataType.STRING),
                    ("kind", DataType.STRING),
                    ("zone", DataType.STRING),
                ],
                keys=[("k",)],
            ),
        ]
    )


def build() -> tuple[Database, AccessSchema]:
    db = Database(schema())
    # dim: 26 rows, 2 kinds, 2 zones
    for i in range(26):
        db.insert(
            "dim",
            (f"k{i}", "red" if i % 2 else "blue", "n" if i < 13 else "s"),
        )
    # big: 2000 rows spread over dim keys; NO constraints on big
    for i in range(2000):
        db.insert("big", (f"k{i % 26}", f"g{i % 5}", i % 100))
    access = AccessSchema(
        [
            AccessConstraint("dim", ["kind", "zone"], ["k"], 100, name="dim_kz"),
            AccessConstraint("dim", ["k"], ["kind", "zone"], 1, name="dim_k"),
        ]
    )
    return db, access


SQL = """
    SELECT DISTINCT b.grp FROM big b, dim d
    WHERE d.kind = 'red' AND d.zone = 'n' AND b.k = d.k
"""


class TestAnalyze:
    def test_partial_plan_found(self):
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        partial = optimizer.analyze(SQL)
        assert partial is not None
        assert partial.covered_bindings == ["d"]
        assert partial.uncovered_bindings == ["b"]
        assert partial.sub_plan.access_bound == 100

    def test_describe(self):
        db, access = build()
        partial = BEPlanOptimizer(ASCatalog(db, access)).analyze(SQL)
        text = partial.describe()
        assert "bounded prefix" in text and "d" in text

    def test_no_constraints_no_partial(self):
        db, _ = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, AccessSchema()))
        assert optimizer.analyze(SQL) is None

    def test_unparseable_query_gives_none(self):
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        assert optimizer.analyze("SELEKT nonsense") is None

    def test_duplicate_sensitive_aggregate_without_keys_refused(self):
        """COUNT(*) over a splice whose prefix is not bag-exact is unsound:
        the optimizer must fall back."""
        db, access = build()
        access.remove("dim_k")  # dim covered only via dim_kz (exposes key k!)
        # dim_kz exposes k which IS the key of dim => still bag-exact;
        # remove the key declaration to force non-exactness
        db2 = Database(
            DatabaseSchema(
                [
                    schema().table("big"),
                    TableSchema(
                        "dim",
                        [
                            ("k", DataType.STRING),
                            ("kind", DataType.STRING),
                            ("zone", DataType.STRING),
                        ],
                    ),
                ]
            )
        )
        for table in db:
            for row in table.rows:
                db2.table(table.schema.name).insert(row)
        optimizer = BEPlanOptimizer(ASCatalog(db2, access))
        partial = optimizer.analyze(
            "SELECT COUNT(*) FROM big b, dim d "
            "WHERE d.kind = 'red' AND d.zone = 'n' AND b.k = d.k"
        )
        assert partial is None


class TestExecute:
    def test_answers_match_conventional(self):
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        partial = optimizer.analyze(SQL)
        result = optimizer.execute(partial)
        host = ConventionalEngine(db).execute(SQL)
        assert sorted(result.rows) == sorted(host.rows)

    def test_partial_scans_less_than_conventional(self):
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        partial = optimizer.analyze(SQL)
        result = optimizer.execute(partial)
        host = ConventionalEngine(db).execute(SQL)
        # the bounded prefix replaces the dim scan with index fetches
        assert result.metrics.tuples_scanned < host.metrics.tuples_scanned
        assert result.metrics.tuples_fetched > 0

    def test_aggregate_with_bag_exact_prefix(self):
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        sql = """
            SELECT b.grp, COUNT(*) AS n FROM big b, dim d
            WHERE d.kind = 'red' AND d.zone = 'n' AND b.k = d.k
            GROUP BY b.grp ORDER BY b.grp
        """
        partial = optimizer.analyze(sql)
        assert partial is not None and partial.sub_plan_bag_exact
        result = optimizer.execute(partial)
        host = ConventionalEngine(db).execute(sql)
        assert result.rows == host.rows

    def test_filters_crossing_the_split_survive(self):
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        sql = """
            SELECT DISTINCT b.grp FROM big b, dim d
            WHERE d.kind = 'red' AND d.zone = 'n' AND b.k = d.k AND b.val > 50
        """
        partial = optimizer.analyze(sql)
        result = optimizer.execute(partial)
        host = ConventionalEngine(db).execute(sql)
        assert sorted(result.rows) == sorted(host.rows)

    def test_constants_inherited_through_equality(self):
        """A selection on the uncovered side that binds a covered attribute
        through an equality class must reach the bounded prefix."""
        db, access = build()
        optimizer = BEPlanOptimizer(ASCatalog(db, access))
        sql = """
            SELECT DISTINCT b.grp FROM big b, dim d
            WHERE d.kind = 'red' AND d.zone = 'n' AND b.k = d.k
              AND b.k = 'k1'
        """
        partial = optimizer.analyze(sql)
        result = optimizer.execute(partial)
        host = ConventionalEngine(db).execute(sql)
        assert sorted(result.rows) == sorted(host.rows)
