"""Row-vs-columnar differential suite (permanent regression guard).

The columnar executor must be observationally identical to the row
executor: same answer rows (in the same order — both modes iterate
fetch inputs, buckets, and tail operators identically), same
``tuples_fetched`` accounting, same per-fetch operation breakdown, and
the same ``dedup_keys`` semantics. This suite replays the seeded random
SPJA workload of ``test_fuzz_differential`` through both executors side
by side — including NULL-enriched instances — and separately pins down
the batch-boundary edge cases: empty inputs, result sets of exactly
``rows_per_batch`` and ``rows_per_batch ± 1`` rows, LIMIT cutting a
batch mid-way (with early stop), and DISTINCT / aggregates that must
carry state across batch boundaries.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.beas.result import ExecutionMode

from tests.conftest import example1_access_schema
from tests.test_fuzz_differential import (
    DATES,
    PNUMS,
    RECNUMS,
    REGIONS,
    random_example1_db,
    random_example1_query,
)

# --------------------------------------------------------------------------- #
# the seeded differential sweep
# --------------------------------------------------------------------------- #
DIFFERENTIAL_SEEDS = 14
QUERIES_PER_SEED = 4
DEDUP_MODES = (False, True)
_SCENARIOS = 0  # row-vs-columnar comparisons performed


def _inject_nulls(db: Database, rng: random.Random) -> None:
    """Overwrite a few Y-attribute values with NULL (recnum/region on
    ``call``, pnum on ``business``) so the sweep exercises NULL gathers,
    NULL join keys, and NULL-aware selections in both modes."""
    call = db.table("call")
    for i in range(len(call.rows)):
        if rng.random() < 0.2:
            row = list(call.rows[i])
            row[rng.choice([2, 4])] = None  # recnum or region
            call.rows[i] = tuple(row)
    business = db.table("business")
    if business.rows and rng.random() < 0.5:
        row = list(business.rows[0])
        row[0] = None  # pnum: a NULL join key
        business.rows[0] = tuple(row)


def _compare_modes(row_beas: BEAS, col_beas: BEAS, sql: str) -> None:
    global _SCENARIOS
    row_result = row_beas.execute(sql)
    col_result = col_beas.execute(sql)
    assert row_result.mode == col_result.mode, sql
    assert row_result.columns == col_result.columns, sql
    # both modes enumerate keys, buckets, and tail operators in the same
    # order, so even the row *order* must agree exactly
    assert row_result.rows == col_result.rows, sql
    row_metrics, col_metrics = row_result.metrics, col_result.metrics
    assert row_metrics.tuples_fetched == col_metrics.tuples_fetched, sql
    assert row_metrics.rows_output == col_metrics.rows_output, sql
    if row_result.mode is ExecutionMode.BOUNDED:
        assert row_metrics.intermediate_rows == col_metrics.intermediate_rows, sql
        row_fetches = [
            (op.label, op.tuples_in, op.tuples_out)
            for op in row_metrics.operations
            if op.label.startswith("fetch[")
        ]
        col_fetches = [
            (op.label, op.tuples_in, op.tuples_out)
            for op in col_metrics.operations
            if op.label.startswith("fetch[")
        ]
        assert row_fetches == col_fetches, sql
        assert col_metrics.rows_per_batch > 0
        assert col_metrics.batches >= len(col_fetches)
        assert row_metrics.batches == 0  # the row executor never batches
    _SCENARIOS += 1


@pytest.mark.parametrize("seed", range(DIFFERENTIAL_SEEDS))
def test_row_vs_columnar_differential(seed: int):
    before = _SCENARIOS
    rng = random.Random(424_200 + seed)
    db = random_example1_db(rng)
    if seed % 2:
        _inject_nulls(db, rng)
    queries = [random_example1_query(rng)[0] for _ in range(QUERIES_PER_SEED)]
    for dedup in DEDUP_MODES:
        # parallelism pinned to 1: this suite isolates row vs columnar
        # (the pooled mode has its own three-way differential suite in
        # tests/test_parallel_differential.py), and a BEAS_PARALLELISM
        # CI leg must not silently turn the row executor into a pooled
        # columnar one here
        row_beas = BEAS(
            db,
            example1_access_schema(),
            dedup_keys=dedup,
            executor="row",
            parallelism=1,
        )
        col_beas = BEAS(
            db,
            example1_access_schema(),
            dedup_keys=dedup,
            executor="columnar",
            rows_per_batch=rng.choice([1, 2, 3, 7, 4096]),
            parallelism=1,
        )
        for sql in queries:
            _compare_modes(row_beas, col_beas, sql)
    assert _SCENARIOS - before == QUERIES_PER_SEED * len(DEDUP_MODES)


def test_differential_scenario_floor():
    """The acceptance bar: >= 100 seeded row-vs-columnar scenarios (each
    parametrized run above asserts its exact share)."""
    total = DIFFERENTIAL_SEEDS * QUERIES_PER_SEED * len(DEDUP_MODES)
    assert total >= 100, f"configured for only {total} scenarios"


# --------------------------------------------------------------------------- #
# batch-boundary edge cases (tiny rows_per_batch to make boundaries bite)
# --------------------------------------------------------------------------- #
BATCH = 8


def _batch_db(n_rows: int) -> Database:
    """One table whose single key ('k') fetches exactly ``n_rows`` rows;
    'u' is unique per row, 'g' cycles through 3 groups, 'n' is 0/1/2."""
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [
                    ("k", DataType.STRING),
                    ("g", DataType.STRING),
                    ("n", DataType.INT),
                    ("u", DataType.STRING),
                ],
                keys=[("u",)],  # exposed via Y => bag-exact plans, so
                # duplicate-sensitive aggregates stay covered
            )
        ]
    )
    db = Database(schema)
    for i in range(n_rows):
        db.insert("t", ("k", f"g{i % 3}", i % 3, f"u{i:05d}"))
    return db


def _batch_beas(db: Database, executor: str) -> BEAS:
    access = AccessSchema(
        [AccessConstraint("t", ["k"], ["g", "n", "u"], 4 * BATCH + 8, name="t_by_k")]
    )
    # parallelism pinned: these edges compare the two in-process modes
    return BEAS(
        db, access, executor=executor, rows_per_batch=BATCH, parallelism=1
    )


def _both(db: Database, sql: str):
    row = _batch_beas(db, "row").execute(sql)
    col = _batch_beas(db, "columnar").execute(sql)
    assert row.mode is ExecutionMode.BOUNDED
    assert col.mode is ExecutionMode.BOUNDED
    assert row.rows == col.rows, sql
    return row, col


class TestBatchBoundaries:
    def test_empty_table(self):
        db = _batch_db(0)
        row, col = _both(db, "SELECT DISTINCT u FROM t WHERE k = 'k'")
        assert col.rows == []
        assert col.metrics.tuples_fetched == 0

    @pytest.mark.parametrize("n_rows", [BATCH - 1, BATCH, BATCH + 1])
    def test_exact_batch_sizes(self, n_rows: int):
        """Result sets of exactly rows_per_batch and ± 1 rows."""
        db = _batch_db(n_rows)
        row, col = _both(db, "SELECT DISTINCT u FROM t WHERE k = 'k'")
        assert len(col.rows) == n_rows
        # one batch for the fetch's seed input + ceil(n/BATCH) tail batches
        expected_tail = (n_rows + BATCH - 1) // BATCH
        assert col.metrics.batches == 1 + expected_tail
        assert col.metrics.rows_per_batch == BATCH

    def test_limit_cuts_mid_batch_with_early_stop(self):
        """LIMIT inside the second of three batches: the third batch is
        never pulled, and the answer matches the row executor exactly."""
        db = _batch_db(3 * BATCH)
        limit = BATCH + 3  # cuts mid-way through batch 2
        row, col = _both(
            db, f"SELECT DISTINCT u FROM t WHERE k = 'k' LIMIT {limit}"
        )
        assert len(col.rows) == limit
        assert col.metrics.batches == 1 + 2  # fetch seed + 2 of 3 tail batches
        limit_ops = [
            op for op in col.metrics.operations if op.label == "limit"
        ]
        assert limit_ops and limit_ops[0].tuples_out == limit

    def test_limit_offset_spans_batches(self):
        db = _batch_db(3 * BATCH)
        row, col = _both(
            db,
            f"SELECT DISTINCT u FROM t WHERE k = 'k' "
            f"ORDER BY u LIMIT {BATCH} OFFSET {BATCH + 2}",
        )
        assert len(col.rows) == BATCH
        assert col.rows[0] == (f"u{BATCH + 2:05d}",)

    def test_distinct_across_batch_boundaries(self):
        """Duplicates recur in every batch ('g' cycles with period 3, so
        each batch re-sees earlier values): the seen-set must persist."""
        db = _batch_db(3 * BATCH)
        row, col = _both(db, "SELECT DISTINCT g FROM t WHERE k = 'k'")
        assert sorted(col.rows) == [("g0",), ("g1",), ("g2",)]

    def test_aggregate_across_batch_boundaries(self):
        db = _batch_db(3 * BATCH + 1)
        sql = (
            "SELECT g, COUNT(*) AS c, SUM(n) AS s, MIN(u) AS lo, MAX(u) AS hi "
            "FROM t WHERE k = 'k' GROUP BY g"
        )
        row, col = _both(db, sql)
        assert Counter(col.rows) == Counter(row.rows)
        # groups accumulate across all three-and-a-bit batches
        assert sum(r[1] for r in col.rows) == 3 * BATCH + 1

    def test_scalar_aggregate_empty_input_single_row(self):
        db = _batch_db(4)
        row, col = _both(db, "SELECT COUNT(*) FROM t WHERE k = 'missing'")
        assert col.rows == [(0,)]

    def test_order_by_spans_batches(self):
        db = _batch_db(2 * BATCH + 5)
        row, col = _both(
            db,
            "SELECT DISTINCT u FROM t WHERE k = 'k' ORDER BY u DESC",
        )
        assert col.rows[0] == (f"u{2 * BATCH + 4:05d}",)
        assert col.rows == sorted(row.rows, reverse=True)


# --------------------------------------------------------------------------- #
# mode wiring: EngineProfile, BEAS per-call override, serving layer
# --------------------------------------------------------------------------- #
class TestModeWiring:
    def test_engine_profile_columnar_tail(self):
        """A conventional engine under a columnar profile runs the tail
        operators batch-wise (scans/joins stay row-wise) and agrees with
        the row profile exactly."""
        from repro import ConventionalEngine, EngineProfile

        db = _batch_db(3 * BATCH + 2)
        sql = "SELECT g, COUNT(*) AS c FROM t WHERE k = 'k' GROUP BY g ORDER BY g"
        row_engine = ConventionalEngine(db)
        columnar_engine = ConventionalEngine(
            db,
            EngineProfile(name="pg-columnar", executor="columnar", rows_per_batch=BATCH),
        )
        row_result = row_engine.execute(sql)
        col_result = columnar_engine.execute(sql)
        assert row_result.rows == col_result.rows
        assert col_result.metrics.batches > 0
        assert row_result.metrics.batches == 0

    def test_engine_profile_rejects_unknown_executor(self):
        from repro import EngineProfile

        with pytest.raises(ValueError):
            EngineProfile(name="bad", executor="vectorised")

    def test_beas_per_call_override(self):
        db = _batch_db(2 * BATCH)
        beas = _batch_beas(db, "row")
        sql = "SELECT DISTINCT u FROM t WHERE k = 'k'"
        default_run = beas.execute(sql)
        override_run = beas.execute(sql, executor="columnar")
        assert default_run.rows == override_run.rows
        assert default_run.metrics.batches == 0
        assert override_run.metrics.batches > 0
        assert override_run.metrics.rows_per_batch == BATCH

    def test_serving_layer_selects_mode_per_query(self):
        db = _batch_db(2 * BATCH)
        server = _batch_beas(db, "row").serve()
        sql = "SELECT DISTINCT u FROM t WHERE k = 'k'"
        row_run = server.execute(sql, use_result_cache=False)
        col_run = server.execute(
            sql, use_result_cache=False, executor="columnar"
        )
        assert row_run.rows == col_run.rows
        assert row_run.metrics.batches == 0
        assert col_run.metrics.batches > 0
        # prepared handles take the same per-call override
        prepared = server.prepare(sql)
        prepared_col = prepared.execute(
            use_result_cache=False, executor="columnar"
        )
        assert prepared_col.rows == row_run.rows
        assert prepared_col.metrics.batches > 0

    def test_partial_plan_honours_per_call_override(self):
        """A partially covered query runs its bounded prefix in the
        per-call mode too (the optimizer must not bake in the default)."""
        schema = DatabaseSchema(
            [
                TableSchema(
                    "t",
                    [
                        ("k", DataType.STRING),
                        ("g", DataType.STRING),
                        ("u", DataType.STRING),
                    ],
                ),
                TableSchema("w", [("g", DataType.STRING), ("x", DataType.STRING)]),
            ]
        )
        db = Database(schema)
        for i in range(3 * BATCH):
            db.insert("t", ("k", f"g{i % 3}", f"u{i:03d}"))
        for i in range(3):
            db.insert("w", (f"g{i}", f"x{i}"))
        access = AccessSchema(
            [AccessConstraint("t", ["k"], ["g", "u"], 4 * BATCH, name="t_by_k")]
        )
        beas = BEAS(
            db, access, executor="row", rows_per_batch=BATCH, parallelism=1
        )
        sql = (
            "SELECT DISTINCT t.u, w.x FROM t, w "
            "WHERE t.k = 'k' AND t.g = w.g"
        )
        row_run = beas.execute(sql)
        col_run = beas.execute(sql, executor="columnar")
        assert row_run.mode is ExecutionMode.PARTIAL
        assert col_run.mode is ExecutionMode.PARTIAL
        assert sorted(row_run.rows) == sorted(col_run.rows)
        assert row_run.metrics.batches == 0
        assert col_run.metrics.batches > 0  # the prefix ran columnar

    def test_env_default_resolution(self, monkeypatch):
        from repro.engine.columnar import resolve_executor_mode

        monkeypatch.delenv("BEAS_EXECUTOR", raising=False)
        assert resolve_executor_mode(None) == "row"
        monkeypatch.setenv("BEAS_EXECUTOR", "columnar")
        assert resolve_executor_mode(None) == "columnar"
        assert resolve_executor_mode("row") == "row"  # explicit wins
        from repro.errors import BEASError

        # construction-time configuration error, like the other engine
        # options (previously an ExecutionError deep in the executor)
        with pytest.raises(BEASError):
            resolve_executor_mode("simd")
