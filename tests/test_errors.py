"""Tests for the exception hierarchy's contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if issubclass(obj, Warning):
                    continue  # warning categories (deprecations) are not errors
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_deprecation_warning_category(self):
        assert issubclass(errors.BEASDeprecationWarning, DeprecationWarning)

    def test_sql_errors_group(self):
        assert issubclass(errors.LexerError, errors.SQLError)
        assert issubclass(errors.ParseError, errors.SQLError)
        assert issubclass(errors.NormalizationError, errors.SQLError)

    def test_catalog_errors_group(self):
        assert issubclass(errors.UnknownTableError, errors.CatalogError)
        assert issubclass(errors.UnknownColumnError, errors.CatalogError)
        assert issubclass(errors.AmbiguousColumnError, errors.CatalogError)
        assert issubclass(errors.TypeMismatchError, errors.CatalogError)

    def test_planning_errors_group(self):
        assert issubclass(errors.NotCoveredError, errors.PlanningError)
        assert issubclass(errors.BudgetExceededError, errors.PlanningError)


class TestErrorPayloads:
    def test_lexer_error_location(self):
        error = errors.LexerError("bad", position=5, line=2, column=3)
        assert error.line == 2 and error.column == 3
        assert "line 2" in str(error)

    def test_parse_error_without_location(self):
        error = errors.ParseError("oops")
        assert str(error) == "oops"

    def test_parse_error_with_location(self):
        error = errors.ParseError("oops", line=1, column=7)
        assert "column 7" in str(error)

    def test_unknown_column_mentions_table(self):
        error = errors.UnknownColumnError("c", "t")
        assert "'c'" in str(error) and "'t'" in str(error)

    def test_ambiguous_column_lists_tables(self):
        error = errors.AmbiguousColumnError("x", ["b", "a"])
        assert "a, b" in str(error)

    def test_not_covered_carries_reasons(self):
        error = errors.NotCoveredError("nope", ["r1", "r2"])
        assert error.reasons == ["r1", "r2"]

    def test_budget_exceeded_payload(self):
        error = errors.BudgetExceededError(100, 10)
        assert error.bound == 100 and error.budget == 10
        assert "100" in str(error) and "10" in str(error)

    def test_conformance_error_violations_default(self):
        error = errors.ConformanceError("bad")
        assert error.violations == []
