"""NULLs flowing through the columnar tail operators across batches.

The batch-aware tail (``ColumnarTailExecutor``) keeps cross-batch state
for aggregates, DISTINCT, and ORDER BY; NULLs are where that state is
easiest to get wrong (SQL aggregates skip NULL inputs, COUNT(*) does
not, AVG divides by the non-NULL count, DISTINCT treats NULL as one
value, ascending sorts put NULLs first). Every case here runs with a
tiny ``rows_per_batch`` so NULLs cross batch boundaries, and each
result is differential against the row executor — plus a pooled pass
at the end, since pickled NULL columns must round-trip identically.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.beas.result import ExecutionMode

BATCH = 4


def null_db() -> Database:
    """28 rows under one key; 'g' has a NULL group, 'n' has NULL measure
    values recurring in every batch, 'u' is the (unique) table key."""
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [
                    ("k", DataType.STRING),
                    ("g", DataType.STRING),
                    ("n", DataType.INT),
                    ("u", DataType.STRING),
                ],
                keys=[("u",)],
            )
        ]
    )
    db = Database(schema)
    for i in range(28):
        group = None if i % 4 == 3 else f"g{i % 3}"
        measure = None if i % 3 == 2 else i
        db.insert("t", ("k", group, measure, f"u{i:04d}"))
    return db


def beas_for(db: Database, executor: str, **kwargs) -> BEAS:
    access = AccessSchema(
        [AccessConstraint("t", ["k"], ["g", "n", "u"], 64, name="t_by_k")]
    )
    kwargs.setdefault("parallelism", 1)
    return BEAS(db, access, executor=executor, rows_per_batch=BATCH, **kwargs)


def both(sql: str):
    db = null_db()
    row = beas_for(db, "row").execute(sql)
    col = beas_for(db, "columnar").execute(sql)
    assert row.mode is ExecutionMode.BOUNDED, sql
    assert col.mode is ExecutionMode.BOUNDED, sql
    assert row.rows == col.rows, sql
    assert row.metrics.tuples_fetched == col.metrics.tuples_fetched, sql
    assert col.metrics.batches > len(row.rows) // BATCH  # really batched
    return row, col


class TestNullAggregatesAcrossBatches:
    def test_count_star_vs_count_column(self):
        row, col = both(
            "SELECT COUNT(*) AS all_rows, COUNT(n) AS non_null "
            "FROM t WHERE k = 'k'"
        )
        assert col.rows == [(28, 19)]  # COUNT(n) skips the 9 NULLs

    def test_sum_avg_skip_nulls(self):
        row, col = both(
            "SELECT SUM(n) AS s, AVG(n) AS a FROM t WHERE k = 'k'"
        )
        total = sum(i for i in range(28) if i % 3 != 2)
        assert col.rows[0][0] == total
        assert col.rows[0][1] == pytest.approx(total / 19)

    def test_min_max_ignore_nulls(self):
        row, col = both("SELECT MIN(n) AS lo, MAX(n) AS hi FROM t WHERE k = 'k'")
        assert col.rows == [(0, 27)]

    def test_all_null_group_aggregates_to_null(self):
        # group g IS NULL: every 4th row; its 'n' values include non-NULLs,
        # so restrict to a predicate that leaves only NULL measures
        row, col = both(
            "SELECT SUM(n) AS s, AVG(n) AS a, MIN(n) AS lo "
            "FROM t WHERE k = 'k' AND n IS NULL"
        )
        assert col.rows == [(None, None, None)]

    def test_group_by_null_group_key(self):
        """The NULL group collects across batches like any other group."""
        row, col = both(
            "SELECT g, COUNT(*) AS c, COUNT(n) AS cn, SUM(n) AS s "
            "FROM t WHERE k = 'k' GROUP BY g"
        )
        assert Counter(col.rows) == Counter(row.rows)
        null_groups = [r for r in col.rows if r[0] is None]
        assert len(null_groups) == 1
        assert null_groups[0][1] == 7  # rows 3,7,11,...,27

    def test_count_distinct_with_nulls(self):
        row, col = both(
            "SELECT COUNT(DISTINCT g) AS dg, COUNT(DISTINCT n) AS dn "
            "FROM t WHERE k = 'k'"
        )
        # COUNT(DISTINCT x) ignores NULLs: 3 groups, 19 distinct measures
        assert col.rows == [(3, 19)]

    def test_having_over_null_bearing_aggregate(self):
        row, col = both(
            "SELECT g, SUM(n) AS s FROM t WHERE k = 'k' "
            "GROUP BY g HAVING COUNT(n) > 4"
        )
        assert Counter(col.rows) == Counter(row.rows)


class TestNullDistinctAndOrderAcrossBatches:
    def test_distinct_folds_nulls_to_one_row(self):
        row, col = both("SELECT DISTINCT g FROM t WHERE k = 'k'")
        assert sum(1 for r in col.rows if r[0] is None) == 1
        assert sorted(r[0] for r in col.rows if r[0] is not None) == [
            "g0",
            "g1",
            "g2",
        ]

    def test_distinct_pairs_with_null_components(self):
        row, col = both("SELECT DISTINCT g, n FROM t WHERE k = 'k'")
        assert len(col.rows) == len(set(col.rows))

    def test_order_by_nulls_first_ascending(self):
        row, col = both(
            "SELECT DISTINCT n FROM t WHERE k = 'k' ORDER BY n"
        )
        assert col.rows[0] == (None,)
        rest = [r[0] for r in col.rows[1:]]
        assert rest == sorted(rest)

    def test_order_by_nulls_last_descending(self):
        row, col = both(
            "SELECT DISTINCT n FROM t WHERE k = 'k' ORDER BY n DESC"
        )
        assert col.rows[-1] == (None,)

    def test_order_by_null_group_then_limit_cuts_mid_batch(self):
        row, col = both(
            "SELECT u, g FROM t WHERE k = 'k' "
            f"ORDER BY g, u LIMIT {BATCH + 2}"
        )
        assert len(col.rows) == BATCH + 2
        # ascending: the NULL-g rows sort first
        assert col.rows[0][1] is None

    def test_null_selection_vector_interaction(self):
        """A filter that drops NULLs (3VL) before the batched tail."""
        row, col = both(
            "SELECT g, COUNT(*) AS c FROM t WHERE k = 'k' AND n >= 0 "
            "GROUP BY g ORDER BY g"
        )
        assert Counter(col.rows) == Counter(row.rows)
        assert sum(r[1] for r in col.rows) == 19  # NULL n never passes >=


def test_null_tail_matches_under_pooled_execution():
    """The pickled wire format round-trips NULL columns bit-for-bit: a
    pooled run over the NULL-heavy instance equals the row executor."""
    db = null_db()
    sql = (
        "SELECT g, COUNT(*) AS c, COUNT(n) AS cn, SUM(n) AS s, MIN(n) AS lo "
        "FROM t WHERE k = 'k' GROUP BY g ORDER BY g"
    )
    oracle = beas_for(db, "row").execute(sql)
    pooled = beas_for(db, "columnar", parallelism=2)
    try:
        result = pooled.execute(sql)
        assert result.rows == oracle.rows
        assert result.metrics.tuples_fetched == oracle.metrics.tuples_fetched
    finally:
        pooled.close()
