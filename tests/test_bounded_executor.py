"""BE Plan Executor tests: correctness vs the host engine, metrics,
dedup-keys mode, runtime bound enforcement, set operations."""

import pytest

from repro import (
    AccessConstraint,
    ASCatalog,
    BoundedEvaluabilityChecker,
    BoundedPlanExecutor,
    ConventionalEngine,
)
from repro.errors import ExecutionError

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
    example1_schema,
)


@pytest.fixture
def catalog() -> ASCatalog:
    return ASCatalog(example1_database(), example1_access_schema())


@pytest.fixture
def checker() -> BoundedEvaluabilityChecker:
    return BoundedEvaluabilityChecker(example1_schema(), example1_access_schema())


def run_bounded(catalog, checker, sql, **kwargs):
    decision = checker.check(sql)
    assert decision.covered, decision.reasons
    executor = BoundedPlanExecutor(catalog, **kwargs)
    return executor.execute(decision.plan)


class TestCorrectness:
    def test_example2_matches_host(self, catalog, checker):
        bounded = run_bounded(catalog, checker, EXAMPLE2_SQL)
        host = ConventionalEngine(catalog.database).execute(EXAMPLE2_SQL)
        assert set(bounded.rows) == set(host.rows)

    def test_single_fetch_query(self, catalog, checker):
        sql = (
            "SELECT DISTINCT recnum, region FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        bounded = run_bounded(catalog, checker, sql)
        host = ConventionalEngine(catalog.database).execute(sql)
        assert sorted(bounded.rows) == sorted(host.rows)

    def test_empty_key_returns_no_rows(self, catalog, checker):
        sql = (
            "SELECT recnum FROM call WHERE pnum = 'nope' AND date = '2016-06-01'"
        )
        assert run_bounded(catalog, checker, sql).rows == []

    def test_in_list_keys(self, catalog, checker):
        sql = (
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum IN ('100', '101') AND date = '2016-06-01'"
        )
        bounded = run_bounded(catalog, checker, sql)
        host = ConventionalEngine(catalog.database).execute(sql)
        assert sorted(bounded.rows) == sorted(host.rows)

    def test_aggregate_duplicate_insensitive(self, catalog, checker):
        sql = (
            "SELECT COUNT(DISTINCT recnum) FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        bounded = run_bounded(catalog, checker, sql)
        host = ConventionalEngine(catalog.database).execute(sql)
        assert bounded.rows == host.rows

    def test_order_by_and_limit(self, catalog, checker):
        sql = (
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01' ORDER BY recnum LIMIT 1"
        )
        bounded = run_bounded(catalog, checker, sql)
        assert bounded.rows == [("555",)]

    def test_set_operation(self, catalog, checker):
        sql = (
            "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east' "
            "UNION "
            "SELECT pnum FROM business WHERE type = 'shop' AND region = 'east'"
        )
        bounded = run_bounded(catalog, checker, sql)
        host = ConventionalEngine(catalog.database).execute(sql)
        assert sorted(bounded.rows) == sorted(host.rows)

    def test_except_operation(self, catalog, checker):
        sql = (
            "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east' "
            "EXCEPT "
            "SELECT DISTINCT pnum FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        # right side: needs pnum in X∪Y of psi1? pnum is an X attr: exposed
        bounded = run_bounded(catalog, checker, sql)
        host = ConventionalEngine(catalog.database).execute(sql)
        assert sorted(bounded.rows) == sorted(host.rows)


class TestMetrics:
    def test_no_base_tuples_scanned(self, catalog, checker):
        result = run_bounded(catalog, checker, EXAMPLE2_SQL)
        assert result.metrics.tuples_scanned == 0
        assert result.metrics.tuples_fetched > 0

    def test_fetch_within_deduced_bound(self, catalog, checker):
        decision = checker.check(EXAMPLE2_SQL)
        result = BoundedPlanExecutor(catalog).execute(decision.plan)
        assert result.metrics.tuples_fetched <= decision.access_bound

    def test_operations_recorded(self, catalog, checker):
        result = run_bounded(catalog, checker, EXAMPLE2_SQL)
        labels = [op.label for op in result.metrics.operations]
        assert any(label.startswith("fetch[psi3]") for label in labels)
        assert any(label.startswith("fetch[psi1]") for label in labels)

    def test_dedup_keys_fetches_less(self, catalog, checker):
        """With key dedup, repeated pnums hit the index once."""
        plain = run_bounded(catalog, checker, EXAMPLE2_SQL, dedup_keys=False)
        deduped = run_bounded(catalog, checker, EXAMPLE2_SQL, dedup_keys=True)
        assert set(plain.rows) == set(deduped.rows)
        assert deduped.metrics.tuples_fetched <= plain.metrics.tuples_fetched


class TestBoundEnforcement:
    def test_executor_detects_nonconforming_drift(self, checker):
        """If data drifts past the constraint after index build (bypassing
        maintenance), the executor's bound check trips rather than
        silently returning unbounded work."""
        db = example1_database()
        catalog = ASCatalog(db, example1_access_schema())
        index = catalog.index_for(catalog.schema.get("psi1"))
        # forge an oversized bucket directly (simulates silent corruption);
        # index keys follow the constraint's sorted X order: (date, pnum)
        key = ("2016-06-01", "100")
        bucket = index._buckets.setdefault(key, {})
        for i in range(600):
            bucket[(f"r{i}", "x")] = 1

        decision = checker.check(
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        with pytest.raises(ExecutionError):
            BoundedPlanExecutor(catalog).execute(decision.plan)


class TestBagSemantics:
    def test_non_distinct_query_returns_set_semantics(self, catalog, checker):
        """call has a duplicate (recnum, region) pair on (100, 2016-06-01):
        BEAS (not bag-exact here) returns distinct rows."""
        sql = (
            "SELECT recnum, region FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        bounded = run_bounded(catalog, checker, sql)
        host = ConventionalEngine(catalog.database).execute(sql)
        assert len(host.rows) == 3  # bag has the duplicate
        assert sorted(bounded.rows) == sorted(set(host.rows))

    def test_bag_exact_plan_preserves_multiplicities(self):
        db = example1_database()
        access = example1_access_schema()
        access.add(
            AccessConstraint(
                "call", ["pnum", "date"], ["call_id", "recnum", "region"], 500,
                name="psi6",
            )
        )
        catalog = ASCatalog(db, access)
        checker = BoundedEvaluabilityChecker(
            db.schema, access, require_exact_multiplicities=True
        )
        sql = (
            "SELECT recnum, region FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        decision = checker.check(sql)
        assert decision.covered and decision.bag_exact
        bounded = BoundedPlanExecutor(catalog).execute(decision.plan)
        host = ConventionalEngine(db).execute(sql)
        assert sorted(bounded.rows) == sorted(host.rows)  # bag equality

    def test_count_star_exact_with_keys(self):
        db = example1_database()
        access = example1_access_schema()
        access.add(
            AccessConstraint(
                "call", ["pnum", "date"], ["call_id", "recnum", "region"], 500,
                name="psi6",
            )
        )
        catalog = ASCatalog(db, access)
        checker = BoundedEvaluabilityChecker(db.schema, access)
        sql = (
            "SELECT COUNT(*) FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        decision = checker.check(sql)
        assert decision.covered
        bounded = BoundedPlanExecutor(catalog).execute(decision.plan)
        host = ConventionalEngine(db).execute(sql)
        assert bounded.rows == host.rows == [(3,)]
