"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind


def kinds(sql: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(sql)][:-1]  # drop EOF


def texts(sql: str) -> list[str]:
    return [t.text for t in tokenize(sql)][:-1]


class TestBasics:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind is TokenKind.EOF

    def test_keywords_upper_cased(self):
        assert texts("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        assert texts("myTable _col x1") == ["myTable", "_col", "x1"]

    def test_keyword_prefix_is_identifier(self):
        # 'selection' starts with 'select' but is one identifier
        tokens = tokenize("selection")
        assert tokens[0].kind is TokenKind.IDENTIFIER

    def test_punctuation(self):
        assert texts("(a, b);") == ["(", "a", ",", "b", ")", ";"]

    def test_qualified_name(self):
        assert texts("t.c") == ["t", ".", "c"]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INTEGER and token.value == 42

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT and token.value == 3.25

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind is TokenKind.FLOAT and token.value == 0.5

    def test_exponent(self):
        token = tokenize("1e3")[0]
        assert token.kind is TokenKind.FLOAT and token.value == 1000.0

    def test_signed_exponent(self):
        token = tokenize("2.5E-2")[0]
        assert token.value == 0.025

    def test_integer_then_dot_identifier(self):
        # '1e' would be a malformed exponent; lexer should not eat 'e3x'
        tokens = tokenize("10 x")
        assert tokens[0].value == 10


class TestStrings:
    def test_simple(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING and token.value == "hello"

    def test_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_empty(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        token = tokenize('"Select"')[0]
        assert token.kind is TokenKind.IDENTIFIER and token.text == "Select"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexerError):
            tokenize('"oops')


class TestOperators:
    def test_longest_match(self):
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_not_equal_variants(self):
        assert texts("a <> b != c") == ["a", "<>", "b", "!=", "c"]

    def test_arithmetic(self):
        assert texts("a + b * c / d % e") == ["a", "+", "b", "*", "c", "/", "d", "%", "e"]

    def test_concat(self):
        assert texts("a || b") == ["a", "||", "b"]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert texts("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a -- trailing") == ["a"]

    def test_block_comment(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* oops")

    def test_newlines_tracked(self):
        tokens = tokenize("a\nb")
        assert tokens[1].line == 2 and tokens[1].column == 1


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as exc:
            tokenize("a @ b")
        assert "@" in str(exc.value)

    def test_error_carries_location(self):
        with pytest.raises(LexerError) as exc:
            tokenize("ab\ncd @")
        assert exc.value.line == 2
