"""Tests for CREATE TABLE / INSERT parsing and script execution."""

import pytest

from repro.catalog.types import DataType
from repro.errors import ParseError, StorageError, TypeMismatchError
from repro.sql import ast
from repro.sql.parser import parse_script
from repro.sql.script import run_script
from repro.storage.database import Database


SCRIPT = """
CREATE TABLE call (
    call_id INT,
    pnum VARCHAR(16),
    date DATE,
    region TEXT,
    cost DOUBLE,
    roaming BOOLEAN,
    PRIMARY KEY (call_id)
);

INSERT INTO call VALUES
    (1, '100', '2016-06-01', 'north', 0.5, TRUE),
    (2, '101', '2016-06-01', 'south', 1.25, FALSE);

INSERT INTO call (call_id, pnum, date, region, cost, roaming)
VALUES (3, '100', '2016-06-02', 'east', 0.0, FALSE);

SELECT pnum, COUNT(*) AS n FROM call GROUP BY pnum ORDER BY pnum;
"""


class TestParseScript:
    def test_statement_kinds(self):
        statements = parse_script(SCRIPT)
        kinds = [type(s).__name__ for s in statements]
        assert kinds == [
            "CreateTable", "InsertValues", "InsertValues", "SelectStatement",
        ]

    def test_create_table_shape(self):
        create = parse_script(SCRIPT)[0]
        assert create.name == "call"
        assert [c.name for c in create.columns] == [
            "call_id", "pnum", "date", "region", "cost", "roaming",
        ]
        assert [c.type_name for c in create.columns] == [
            "int", "string", "date", "string", "float", "bool",
        ]
        assert create.primary_key == ("call_id",)

    def test_composite_primary_key(self):
        create = parse_script(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))"
        )[0]
        assert create.primary_key == ("a", "b")

    def test_duplicate_primary_key_rejected(self):
        with pytest.raises(ParseError):
            parse_script(
                "CREATE TABLE t (a INT, PRIMARY KEY (a), PRIMARY KEY (a))"
            )

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_script("CREATE TABLE t (a BLOB)")

    def test_empty_table_rejected(self):
        with pytest.raises(ParseError):
            parse_script("CREATE TABLE t ()")

    def test_insert_literals_only(self):
        with pytest.raises(ParseError):
            parse_script("INSERT INTO t VALUES (1 + 2)")

    def test_negative_literals_fold(self):
        insert = parse_script("INSERT INTO t VALUES (-5, -1.5)")[0]
        assert insert.rows[0][0].value == -5
        assert insert.rows[0][1].value == -1.5

    def test_null_literal(self):
        insert = parse_script("INSERT INTO t VALUES (NULL)")[0]
        assert insert.rows[0][0].value is None

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(ParseError):
            parse_script("CREATE TABLE t (a INT) CREATE TABLE u (b INT)")

    def test_type_names_stay_identifiers_elsewhere(self):
        # 'date' is a TLC column name; it must still parse as an identifier
        statement = parse_script("SELECT date FROM call WHERE date = '2016-01-01'")[0]
        assert isinstance(statement, ast.SelectStatement)


class TestRunScript:
    def test_full_script(self):
        db = Database()
        result = run_script(db, SCRIPT)
        assert result.tables_created == ["call"]
        assert result.rows_inserted == 3
        assert len(db.table("call")) == 3
        assert db.table("call").schema.has_key_within({"call_id"})
        (select_result,) = result.select_results
        assert select_result.rows == [("100", 2), ("101", 1)]

    def test_values_coerced_to_column_types(self):
        db = Database()
        run_script(
            db,
            "CREATE TABLE t (a INT, d DATE); INSERT INTO t VALUES (7, '2016-6-1')",
        )
        assert db.table("t").rows == [(7, "2016-06-01")]

    def test_type_mismatch_rejected(self):
        db = Database()
        with pytest.raises(TypeMismatchError):
            run_script(
                db, "CREATE TABLE t (a INT); INSERT INTO t VALUES ('abc')"
            )

    def test_arity_mismatch_rejected(self):
        db = Database()
        with pytest.raises(StorageError):
            run_script(db, "CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1)")

    def test_partial_column_insert_fills_nulls(self):
        db = Database()
        run_script(
            db,
            "CREATE TABLE t (a INT, b INT); INSERT INTO t (b) VALUES (9)",
        )
        assert db.table("t").rows == [(None, 9)]

    def test_duplicate_insert_column_rejected(self):
        db = Database()
        with pytest.raises(StorageError):
            run_script(
                db,
                "CREATE TABLE t (a INT); INSERT INTO t (a, a) VALUES (1, 2)",
            )

    def test_select_through_custom_engine(self):
        """A BEAS instance can serve the SELECTs of a script."""
        from repro import AccessConstraint, BEAS

        db = Database()
        run_script(
            db,
            "CREATE TABLE t (k STRING, v STRING);"
            "INSERT INTO t VALUES ('a', 'x'), ('a', 'y'), ('b', 'z')",
        )
        beas = BEAS(db)
        beas.register(AccessConstraint("t", ["k"], ["v"], 10, name="c"))
        result = run_script(
            db, "SELECT DISTINCT v FROM t WHERE k = 'a'", engine=beas
        )
        assert sorted(result.select_results[0].rows) == [("x",), ("y",)]
        assert result.select_results[0].metrics.tuples_scanned == 0
