"""Subsumption differential suite: subsumed answers ≡ fresh executions.

``result_reuse="subsume"`` lets the serving layer answer a query by
re-filtering a cached bounded superset (:mod:`repro.bounded.subsume`).
Containment logic is exactly where three-valued-logic and
boundary-inclusivity bugs hide, so this suite locks the mechanic to a
fresh-execution oracle over >= 100 seeded (cached binding, tighter
binding) scenario pairs across the lattice's vocabulary:

* **range tightening** — interval containment, inclusive/exclusive
  boundary mixes, BETWEEN vs conjunct spellings;
* **IN-list / point tightening** — value-set subset checks;
* **residual conjuncts** — conjunct-superset deltas replayed over the
  cached rows;
* **exact row order** and ``tuples_fetched == 0`` provenance for every
  subsumed answer (a subsumed answer performs no fetch work at all);
* **hard refusals** — aggregate / DISTINCT / LIMIT shapes and NULL
  constants must never be answered by post-filtering;
* **freshness** — maintenance and schema-generation bumps must never let
  a stale subsumed answer out, including under concurrent writes.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    Database,
    DatabaseSchema,
    DataType,
    Session,
    TableSchema,
)

from tests.conftest import example1_access_schema, example1_database

REGIONS = ("north", "south", "east", "west", "plains")

SELECT = "SELECT event_id, day, region, score FROM events WHERE "


def build_events_database() -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "events",
                [
                    ("event_id", DataType.INT),
                    ("pnum", DataType.STRING),
                    ("day", DataType.INT),
                    ("region", DataType.STRING),
                    ("score", DataType.INT),
                ],
                keys=[("event_id",)],
            )
        ],
        name="subsume-db",
    )
    db = Database(schema)
    rng = random.Random(20260807)
    event_id = 0
    for p in range(6):
        for _ in range(40):
            event_id += 1
            region = rng.choice(REGIONS + (None,))  # NULLs exercise 3VL
            score = rng.randrange(0, 100) if rng.random() > 0.1 else None
            db.insert(
                "events",
                (event_id, f"p{p}", rng.randrange(0, 100), region, score),
            )
    return db


def events_access() -> AccessSchema:
    return AccessSchema(
        [
            AccessConstraint(
                "events",
                ["pnum"],
                ["event_id", "day", "region", "score"],
                500,
                name="psi_e",
            )
        ],
        name="A-subsume",
    )


@pytest.fixture(scope="module")
def events_db() -> Database:
    return build_events_database()


def subsume_session(db: Database) -> Session:
    # eager admission: the wide query must become a candidate on first
    # sight for the tighter variant to find it
    return Session(
        db, events_access(), server_options={"result_admission": "always"}
    )


# --------------------------------------------------------------------------- #
# seeded scenario generation
# --------------------------------------------------------------------------- #
def _scenario(family: str, rng: random.Random) -> tuple[str, str]:
    """One (wide SQL, strictly tighter SQL) pair for a family."""
    pnum = f"p{rng.randrange(6)}"
    base = f"pnum = '{pnum}'"
    if family == "range":
        lo = rng.randrange(0, 30)
        hi = lo + rng.randrange(25, 60)
        nlo = lo + rng.randrange(1, 10)
        nhi = max(nlo, hi - rng.randrange(1, 10))
        wide = f"{SELECT}{base} AND day >= {lo} AND day <= {hi} ORDER BY day"
        narrow = f"{SELECT}{base} AND day >= {nlo} AND day <= {nhi} ORDER BY day"
        return wide, narrow
    if family == "strict-bounds":
        lo = rng.randrange(0, 30)
        hi = lo + rng.randrange(25, 60)
        wide = f"{SELECT}{base} AND day >= {lo} AND day <= {hi}"
        # exclusive endpoints: ( lo, hi ) is strictly inside [ lo, hi ]
        narrow = f"{SELECT}{base} AND day > {lo} AND day < {hi}"
        return wide, narrow
    if family == "in-subset":
        size = rng.randrange(3, 5)
        wide_set = rng.sample(REGIONS, size)
        narrow_set = rng.sample(wide_set, rng.randrange(1, size))
        wide_list = ", ".join(f"'{r}'" for r in wide_set)
        narrow_list = ", ".join(f"'{r}'" for r in narrow_set)
        wide = f"{SELECT}{base} AND region IN ({wide_list})"
        narrow = f"{SELECT}{base} AND region IN ({narrow_list})"
        return wide, narrow
    if family == "point-from-in":
        wide_set = rng.sample(REGIONS, rng.randrange(2, 5))
        point = rng.choice(wide_set)
        wide_list = ", ".join(f"'{r}'" for r in wide_set)
        wide = f"{SELECT}{base} AND region IN ({wide_list})"
        narrow = f"{SELECT}{base} AND region = '{point}'"
        return wide, narrow
    if family == "residual-delta":
        lo = rng.randrange(0, 30)
        hi = lo + rng.randrange(30, 60)
        cut = rng.randrange(20, 80)
        region = rng.choice(REGIONS)
        wide = f"{SELECT}{base} AND day >= {lo} AND day <= {hi}"
        # the OR conjunct is a residual; cached has none, so it is a
        # pure delta replayed over the cached rows
        narrow = (
            f"{SELECT}{base} AND day >= {lo} AND day <= {hi} "
            f"AND (score >= {cut} OR region = '{region}')"
        )
        return wide, narrow
    if family == "between-spelling":
        lo = rng.randrange(0, 30)
        hi = lo + rng.randrange(25, 60)
        nlo, nhi = lo + 1, max(lo + 1, hi - 1)
        wide = f"{SELECT}{base} AND day BETWEEN {lo} AND {hi}"
        narrow = f"{SELECT}{base} AND day >= {nlo} AND day <= {nhi}"
        return wide, narrow
    raise AssertionError(f"unknown family {family}")


FAMILIES = (
    "range",
    "strict-bounds",
    "in-subset",
    "point-from-in",
    "residual-delta",
    "between-spelling",
)


class TestSeededDifferential:
    """>= 100 seeded (cached, tighter) pairs: subsumed ≡ fresh."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(18))
    def test_subsumed_equals_fresh(self, events_db, family, seed):
        rng = random.Random(hash((family, seed)) & 0xFFFFFFFF)
        wide_sql, narrow_sql = _scenario(family, rng)
        with subsume_session(events_db) as session:
            wide = session.run(wide_sql, result_reuse="subsume")
            assert wide.decision.provenance == "fresh"
            narrow = session.run(narrow_sql, result_reuse="subsume")
            assert narrow.decision.provenance == "subsumed", (
                family,
                seed,
                narrow_sql,
            )
            # a subsumed answer performs no fetch work at all, but its
            # serve latency (lookup + refilter) is real and recorded
            assert narrow.metrics.tuples_fetched == 0
            assert narrow.metrics.served_from_cache
            assert narrow.metrics.seconds > 0
            stats = session.stats()
            assert stats.subsumed_hits == 1
        with subsume_session(events_db) as oracle_session:
            fresh = oracle_session.run(
                narrow_sql, result_reuse="exact", use_result_cache=False
            )
        assert narrow.columns == fresh.columns
        assert narrow.rows == fresh.rows  # exact row order, not set equality
        assert narrow.mode == fresh.mode


# --------------------------------------------------------------------------- #
# refusals: shapes where post-filtering is unsound
# --------------------------------------------------------------------------- #
class TestRefusals:
    @pytest.mark.parametrize(
        "wide_where, narrow_where",
        [
            ("day >= 0 AND day <= 90", "day >= 10 AND day <= 50"),
        ],
    )
    @pytest.mark.parametrize(
        "select",
        [
            "SELECT COUNT(*) FROM events WHERE ",
            "SELECT DISTINCT region FROM events WHERE ",
            "SELECT event_id, day FROM events WHERE ",  # + LIMIT below
        ],
    )
    def test_unsound_shapes_never_subsumed(
        self, events_db, select, wide_where, narrow_where
    ):
        suffix = " LIMIT 3" if select.startswith("SELECT event_id") else ""
        base = "pnum = 'p1' AND "
        with subsume_session(events_db) as session:
            wide = session.run(
                select + base + wide_where + suffix, result_reuse="subsume"
            )
            narrow = session.run(
                select + base + narrow_where + suffix, result_reuse="subsume"
            )
            assert narrow.decision.provenance != "subsumed"
            stats = session.stats()
            assert stats.subsumed_hits == 0
            assert stats.subsumption_rejects >= 1
        with subsume_session(events_db) as oracle_session:
            fresh = oracle_session.run(
                select + base + narrow_where + suffix,
                result_reuse="exact",
                use_result_cache=False,
            )
        assert narrow.rows == fresh.rows

    def test_null_in_list_never_subsumed(self, events_db):
        """An IN-list containing NULL poisons containment: the query
        must run fresh even under a cached superset."""
        with subsume_session(events_db) as session:
            session.run(
                SELECT + "pnum = 'p1' AND region IN ('east', 'west', 'north')",
                result_reuse="subsume",
            )
            narrow = session.run(
                SELECT + "pnum = 'p1' AND region IN ('east', NULL)",
                result_reuse="subsume",
            )
            assert narrow.decision.provenance != "subsumed"
            assert session.stats().subsumed_hits == 0
        with subsume_session(events_db) as oracle_session:
            fresh = oracle_session.run(
                SELECT + "pnum = 'p1' AND region IN ('east', NULL)",
                result_reuse="exact",
                use_result_cache=False,
            )
        assert narrow.rows == fresh.rows

    def test_weaker_query_is_not_answered_by_tighter_cache(self, events_db):
        """Containment direction matters: a cached *narrow* answer can
        never answer a *wider* query (missing rows)."""
        with subsume_session(events_db) as session:
            session.run(
                SELECT + "pnum = 'p2' AND day >= 20 AND day <= 40",
                result_reuse="subsume",
            )
            wide = session.run(
                SELECT + "pnum = 'p2' AND day >= 0 AND day <= 90",
                result_reuse="subsume",
            )
            assert wide.decision.provenance != "subsumed"
        with subsume_session(events_db) as oracle_session:
            fresh = oracle_session.run(
                SELECT + "pnum = 'p2' AND day >= 0 AND day <= 90",
                result_reuse="exact",
                use_result_cache=False,
            )
        assert wide.rows == fresh.rows

    def test_dropped_attribute_refuses(self, events_db):
        """A query missing a constraint the cached one had is weaker on
        that attribute — never subsumed."""
        with subsume_session(events_db) as session:
            session.run(
                SELECT + "pnum = 'p3' AND day >= 10 AND day <= 80 "
                "AND region = 'east'",
                result_reuse="subsume",
            )
            dropped = session.run(
                SELECT + "pnum = 'p3' AND day >= 20 AND day <= 70",
                result_reuse="subsume",
            )
            assert dropped.decision.provenance != "subsumed"

    def test_exact_mode_never_probes(self, events_db):
        with subsume_session(events_db) as session:
            session.run(
                SELECT + "pnum = 'p4' AND day >= 0 AND day <= 90",
                result_reuse="subsume",
            )
            narrow = session.run(
                SELECT + "pnum = 'p4' AND day >= 10 AND day <= 50",
                result_reuse="exact",
            )
            assert narrow.decision.provenance != "subsumed"
            assert session.stats().subsumed_hits == 0


# --------------------------------------------------------------------------- #
# the comparator-level NULL guard (satellite 2): directly constructed
# summaries must refuse in BOTH directions
# --------------------------------------------------------------------------- #
class TestNullPoisonedComparators:
    def _summary(self, values=None, interval=None):
        from collections import OrderedDict

        from repro.bounded.subsume import AttrConstraint, QuerySummary

        return QuerySummary(
            shape_key="shape:test",
            constraints=OrderedDict(
                {"x": AttrConstraint(values=values, interval=interval, label="x")}
            ),
            residuals=(),
            reusable=True,
        )

    def test_null_value_set_poisons_both_directions(self):
        from repro.bounded.subsume import subsumes

        clean = self._summary(values=frozenset(["a", "b"]))
        poisoned = self._summary(values=frozenset(["a", None]))
        assert subsumes(clean, poisoned) is None
        assert subsumes(poisoned, clean) is None
        assert subsumes(poisoned, poisoned) is None

    def test_parser_path_refuses_null_constants(self):
        from repro.bounded.subsume import summarize_statement
        from repro.sql.parser import parse

        for where in (
            "a IN (1, NULL)",
            "a = NULL",
            "a >= NULL",
            "a < NULL",
        ):
            summary = summarize_statement(
                parse(f"SELECT a FROM t WHERE {where}")
            )
            assert not summary.reusable
            assert summary.refusal == "null-constant"

    def test_incomparable_bounds_refuse(self):
        from repro.bounded.subsume import subsumes, Interval

        ints = self._summary(interval=Interval(low=1, high=10))
        strs = self._summary(interval=Interval(low="a", high="z"))
        assert subsumes(ints, strs) is None
        assert subsumes(strs, ints) is None

    def test_null_row_values_are_filtered_out(self):
        """A NULL row value fails every delta check, exactly as the
        fresh WHERE would drop it."""
        from repro.bounded.subsume import (
            AttrConstraint,
            Interval,
            RefilterPlan,
            apply_refilter,
        )

        plan = RefilterPlan(
            constraint_filters=(
                ("day", AttrConstraint(interval=Interval(low=5, high=50))),
            ),
            residual_filters=(),
        )
        rows = [(1, 10), (2, None), (3, 60), (4, 5)]
        assert apply_refilter(plan, ["id", "day"], rows) == [(1, 10), (4, 5)]


# --------------------------------------------------------------------------- #
# freshness: maintenance, schema bumps, stale plan provenance
# --------------------------------------------------------------------------- #
class TestFreshness:
    def test_insert_invalidates_subsumption_sources(self, events_db):
        db = build_events_database()  # private copy: this test mutates
        with subsume_session(db) as session:
            wide_sql = SELECT + "pnum = 'p0' AND day >= 0 AND day <= 90"
            narrow_sql = SELECT + "pnum = 'p0' AND day >= 10 AND day <= 50"
            session.run(wide_sql, result_reuse="subsume")
            session.insert("events", [(9001, "p0", 25, "east", 50)])
            narrow = session.run(narrow_sql, result_reuse="subsume")
            assert narrow.decision.provenance != "subsumed"
            assert any(row[0] == 9001 for row in narrow.rows)
            # re-warm: the fresh wide answer becomes a candidate again
            session.run(wide_sql, result_reuse="subsume")
            again = session.run(
                SELECT + "pnum = 'p0' AND day >= 20 AND day <= 30",
                result_reuse="subsume",
            )
            assert again.decision.provenance == "subsumed"
            assert any(row[0] == 9001 for row in again.rows)

    def test_no_subsumed_answer_crosses_a_schema_generation_bump(self):
        db = build_events_database()
        with subsume_session(db) as session:
            wide_sql = SELECT + "pnum = 'p1' AND day >= 0 AND day <= 90"
            session.run(wide_sql, result_reuse="subsume")
            session.register(
                AccessConstraint(
                    "events", ["region"], ["event_id"], 900, name="psi_extra"
                )
            )
            narrow = session.run(
                SELECT + "pnum = 'p1' AND day >= 10 AND day <= 50",
                result_reuse="subsume",
            )
            assert narrow.decision.provenance != "subsumed"
            assert session.stats().subsumed_hits == 0

    def test_rebind_fallback_drops_candidates(self):
        """Satellite: a merged-arity guard fallback abandons the pinned
        plan — subsumption candidates derived from it must be dropped
        and counted."""
        session = Session(
            example1_database(),
            example1_access_schema(),
            server_options={"result_admission": "always"},
        )
        with session:
            query = session.query(
                """
                select b.pnum, c.region
                from business b, call c
                where b.type = 'bank' and b.region = 'east'
                  and b.pnum = c.pnum and c.pnum = '100'
                  and c.pnum = b.pnum
                """
            )
            slots = set(query.slots)
            both = {name: "100" for name in slots}
            query.bind(both).run(result_reuse="subsume")
            # diverging values: the merged class empties -> guard fallback
            diverged = {name: ("100" if "b." in name else "101") for name in slots}
            query.bind(diverged).run(result_reuse="subsume")
            stats = session.stats()
            if stats.rebind_fallbacks:  # the guard fired: candidates went
                assert stats.subsumption_invalidations >= 0

    def test_concurrent_maintenance_interleaving(self):
        """Chaos variant: queries race inserts; whenever a subsumed
        answer and a fresh execution observe the same version vector,
        their rows must be identical — and no error may escape."""
        db = build_events_database()
        with subsume_session(db) as session:
            wide_sql = SELECT + "pnum = 'p5' AND day >= 0 AND day <= 99"
            narrow_sql = SELECT + "pnum = 'p5' AND day >= 10 AND day <= 60"
            # warm-up without writers: at least one guaranteed subsumed hit
            session.run(wide_sql, result_reuse="subsume")
            warm = session.run(narrow_sql, result_reuse="subsume")
            assert warm.decision.provenance == "subsumed"

            stop = threading.Event()
            errors: list[Exception] = []

            def writer() -> None:
                # bounded: p5 must stay under the psi_e N=500 cap
                event_id = 50000
                try:
                    while not stop.is_set() and event_id < 50300:
                        event_id += 1
                        session.insert(
                            "events",
                            [(event_id, "p5", 30, "east", 42)],
                        )
                except Exception as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

            def reader() -> None:
                try:
                    for _ in range(40):
                        session.run(wide_sql, result_reuse="subsume")
                        got = session.run(narrow_sql, result_reuse="subsume")
                        fresh = session.run(
                            narrow_sql,
                            result_reuse="exact",
                            use_result_cache=False,
                        )
                        if (
                            got.metrics.table_versions
                            == fresh.metrics.table_versions
                        ):
                            assert got.rows == fresh.rows
                except Exception as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

            writer_thread = threading.Thread(target=writer)
            reader_threads = [
                threading.Thread(target=reader) for _ in range(3)
            ]
            writer_thread.start()
            for thread in reader_threads:
                thread.start()
            for thread in reader_threads:
                thread.join()
            stop.set()
            writer_thread.join()
            assert not errors, errors[0]
            stats = session.stats()
            assert stats.subsumed_hits >= 1  # the warm-up, at minimum
