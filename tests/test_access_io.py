"""Access schema JSON serialisation tests."""

import io
import json

import pytest

from repro.access.io import dump_schema, load_schema, schema_from_dict, schema_to_dict
from repro.errors import AccessSchemaError

from tests.conftest import example1_access_schema


class TestRoundTrip:
    def test_dict_round_trip(self):
        schema = example1_access_schema()
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt.name == schema.name
        assert {c.name for c in rebuilt} == {c.name for c in schema}
        for constraint in schema:
            twin = rebuilt.get(constraint.name)
            assert twin == constraint

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "schema.json"
        dump_schema(example1_access_schema(), path)
        rebuilt = load_schema(path)
        assert rebuilt.get("psi1").n == 500
        assert rebuilt.get("psi2").x == ("pnum", "year")

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        dump_schema(example1_access_schema(), buffer)
        buffer.seek(0)
        rebuilt = load_schema(buffer)
        assert len(rebuilt) == 3

    def test_json_is_stable_and_readable(self):
        document = schema_to_dict(example1_access_schema())
        text = json.dumps(document)
        assert '"psi1"' in text and '"call"' in text and "500" in text


class TestErrors:
    def test_missing_constraints_key(self):
        with pytest.raises(AccessSchemaError):
            schema_from_dict({"name": "A"})

    def test_malformed_entry(self):
        with pytest.raises(AccessSchemaError) as exc:
            schema_from_dict({"constraints": [{"relation": "r"}]})
        assert "#0" in str(exc.value)

    def test_invalid_json_text(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(AccessSchemaError):
            load_schema(path)

    def test_constraint_validation_still_applies(self):
        # x/y overlap is caught by AccessConstraint itself
        with pytest.raises(AccessSchemaError):
            schema_from_dict(
                {
                    "constraints": [
                        {"relation": "r", "x": ["a"], "y": ["a"], "n": 1}
                    ]
                }
            )

    def test_default_name(self):
        schema = schema_from_dict({"constraints": []})
        assert schema.name == "A"
