"""Access schema JSON serialisation tests."""

import io
import json

import pytest

from repro.access.io import dump_schema, load_schema, schema_from_dict, schema_to_dict
from repro.errors import AccessSchemaError

from tests.conftest import example1_access_schema


class TestRoundTrip:
    def test_dict_round_trip(self):
        schema = example1_access_schema()
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt.name == schema.name
        assert {c.name for c in rebuilt} == {c.name for c in schema}
        for constraint in schema:
            twin = rebuilt.get(constraint.name)
            assert twin == constraint

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "schema.json"
        dump_schema(example1_access_schema(), path)
        rebuilt = load_schema(path)
        assert rebuilt.get("psi1").n == 500
        assert rebuilt.get("psi2").x == ("pnum", "year")

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        dump_schema(example1_access_schema(), buffer)
        buffer.seek(0)
        rebuilt = load_schema(buffer)
        assert len(rebuilt) == 3

    def test_json_is_stable_and_readable(self):
        document = schema_to_dict(example1_access_schema())
        text = json.dumps(document)
        assert '"psi1"' in text and '"call"' in text and "500" in text


class TestErrors:
    def test_missing_constraints_key(self):
        with pytest.raises(AccessSchemaError):
            schema_from_dict({"name": "A"})

    def test_malformed_entry(self):
        with pytest.raises(AccessSchemaError) as exc:
            schema_from_dict({"constraints": [{"relation": "r"}]})
        assert "#0" in str(exc.value)

    def test_invalid_json_text(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(AccessSchemaError):
            load_schema(path)

    def test_constraint_validation_still_applies(self):
        # x/y overlap is caught by AccessConstraint itself
        with pytest.raises(AccessSchemaError):
            schema_from_dict(
                {
                    "constraints": [
                        {"relation": "r", "x": ["a"], "y": ["a"], "n": 1}
                    ]
                }
            )

    def test_default_name(self):
        schema = schema_from_dict({"constraints": []})
        assert schema.name == "A"


class TestValidationSweep:
    """Regressions for the schema_from_dict validation gaps closed in the
    serialization-boundary sweep: duplicate names, string-shaped
    attribute lists, non-string attributes, and the n bound accepting
    bools / silently truncating floats."""

    @staticmethod
    def _entry(**overrides) -> dict:
        entry = {
            "name": "psi",
            "relation": "r",
            "x": ["a"],
            "y": ["b"],
            "n": 10,
        }
        entry.update(overrides)
        return entry

    def test_duplicate_names_cite_both_entries(self):
        with pytest.raises(AccessSchemaError) as exc:
            schema_from_dict(
                {
                    "constraints": [
                        self._entry(),
                        self._entry(x=["c"], y=["d"]),
                    ]
                }
            )
        message = str(exc.value)
        assert "duplicate" in message
        assert "#1" in message and "#0" in message

    def test_x_as_plain_string_rejected(self):
        # "ab" iterates as ["a", "b"] — must be rejected, not exploded
        with pytest.raises(AccessSchemaError, match="#0.*'x'.*list"):
            schema_from_dict({"constraints": [self._entry(x="ab")]})

    def test_y_as_plain_string_rejected(self):
        with pytest.raises(AccessSchemaError, match="#0.*'y'.*list"):
            schema_from_dict({"constraints": [self._entry(y="b")]})

    def test_non_string_attribute_rejected(self):
        with pytest.raises(AccessSchemaError, match="#0.*non-string"):
            schema_from_dict({"constraints": [self._entry(y=["b", 3])]})

    def test_bool_bound_rejected(self):
        # bool is an int subclass: True must not slip through as n=1
        with pytest.raises(AccessSchemaError, match="#0.*'n'.*integer"):
            schema_from_dict({"constraints": [self._entry(n=True)]})

    def test_float_bound_rejected_not_truncated(self):
        # int(500.9) used to truncate to 500 — now a hard error
        with pytest.raises(AccessSchemaError, match="#0.*'n'.*integer"):
            schema_from_dict({"constraints": [self._entry(n=500.9)]})

    def test_empty_relation_rejected(self):
        with pytest.raises(AccessSchemaError, match="#0.*'relation'"):
            schema_from_dict({"constraints": [self._entry(relation="")]})

    def test_empty_name_rejected(self):
        with pytest.raises(AccessSchemaError, match="#0.*'name'"):
            schema_from_dict({"constraints": [self._entry(name="")]})

    def test_error_names_the_offending_index(self):
        # a later bad entry is reported by ITS index, not #0
        with pytest.raises(AccessSchemaError, match="#2"):
            schema_from_dict(
                {
                    "constraints": [
                        self._entry(name="a"),
                        self._entry(name="b"),
                        self._entry(name="c", n="ten"),
                    ]
                }
            )
