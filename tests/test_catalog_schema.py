"""Unit tests for repro.catalog.schema."""

import pytest

from repro.catalog.schema import AttributeRef, Column, DatabaseSchema, TableSchema, validate_attributes
from repro.catalog.types import DataType
from repro.errors import CatalogError, UnknownColumnError, UnknownTableError


def make_table() -> TableSchema:
    return TableSchema(
        "t",
        [("a", DataType.INT), ("b", DataType.STRING), ("c", DataType.FLOAT)],
        keys=[("a",)],
    )


class TestTableSchema:
    def test_column_names_ordered(self):
        assert make_table().column_names == ("a", "b", "c")

    def test_arity(self):
        assert make_table().arity == 3

    def test_position_lookup(self):
        table = make_table()
        assert table.position("b") == 1

    def test_positions_many(self):
        assert make_table().positions(["c", "a"]) == (2, 0)

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            make_table().position("z")

    def test_contains(self):
        table = make_table()
        assert "a" in table
        assert "z" not in table

    def test_dtype(self):
        assert make_table().dtype("c") is DataType.FLOAT

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [("a", DataType.INT), ("a", DataType.INT)])

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [])

    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("", [("a", DataType.INT)])

    def test_key_with_unknown_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            TableSchema("t", [("a", DataType.INT)], keys=[("z",)])

    def test_has_key_within(self):
        table = make_table()
        assert table.has_key_within({"a", "b"})
        assert not table.has_key_within({"b", "c"})

    def test_composite_key(self):
        table = TableSchema(
            "t", [("a", DataType.INT), ("b", DataType.INT)], keys=[("a", "b")]
        )
        assert table.has_key_within({"a", "b"})
        assert not table.has_key_within({"a"})

    def test_equality_by_value(self):
        assert make_table() == make_table()

    def test_invalid_column_name(self):
        with pytest.raises(CatalogError):
            Column("bad name", DataType.INT)


class TestDatabaseSchema:
    def test_lookup(self):
        schema = DatabaseSchema([make_table()])
        assert schema.table("t").name == "t"

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            DatabaseSchema().table("missing")

    def test_duplicate_table_rejected(self):
        schema = DatabaseSchema([make_table()])
        with pytest.raises(CatalogError):
            schema.add_table(make_table())

    def test_contains_and_len(self):
        schema = DatabaseSchema([make_table()])
        assert "t" in schema
        assert len(schema) == 1

    def test_total_attributes(self):
        schema = DatabaseSchema(
            [make_table(), TableSchema("u", [("x", DataType.INT)])]
        )
        assert schema.total_attributes() == 4

    def test_validate_attributes_ok(self):
        schema = DatabaseSchema([make_table()])
        validate_attributes(schema, [AttributeRef("t", "a")])

    def test_validate_attributes_bad_column(self):
        schema = DatabaseSchema([make_table()])
        with pytest.raises(UnknownColumnError):
            validate_attributes(schema, [AttributeRef("t", "zz")])
