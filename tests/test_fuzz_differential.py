"""Differential fuzzing: every BEAS mode vs the brute-force oracle.

A seeded random generator produces SPJA queries (projections, equality /
range / IN predicates, joins, aggregates, GROUP BY, LIMIT) over the
paper's Example-1 schema and over the TLC schema, and asserts that
whatever mode BEAS picks — bounded, partial, conventional, and the
serving layer's cached replays of each — agrees with
``tests.reference_evaluator`` under bag semantics. Random interleaved
insert/delete batches re-run the same queries against a fresh oracle
afterwards, which is the guard that the serving caches never serve
stale or wrong rows.

Comparison rules:

* non-bag-exact bounded answers carry set semantics (the checker records
  ``bag_exact=False``), so they compare as sets against the oracle;
* everything else compares as a multiset;
* ``LIMIT`` without ``ORDER BY`` may return any admissible subset, so
  those compare by cardinality + multiset containment.

Every comparison is a hard assert, each parametrized test asserts it
performed exactly its configured share of scenarios, and
``test_scenario_floor`` checks the configured total covers at least 200
query/maintenance scenarios.
"""

from __future__ import annotations

import os
import random
import threading
from collections import Counter

import pytest

from repro import BEAS, Database
from repro.config import env_fuzz_seeds
from repro.beas.result import ExecutionMode
from repro.errors import MaintenanceError
from repro.workloads.tlc import tlc_access_schema
from repro.workloads.tlc.schema import tlc_schema

from tests.conftest import example1_access_schema, example1_schema
from tests.reference_evaluator import reference_execute

_SCENARIOS = 0  # comparisons performed across the whole module


# --------------------------------------------------------------------------- #
# random Example-1 instances
# --------------------------------------------------------------------------- #
PNUMS = ["100", "101", "102", "103", "104", "105"]
DATES = ["2016-06-01", "2016-06-02", "2016-06-03"]
REGIONS = ["north", "south", "east", "west", "plains"]
TYPES = ["bank", "shop", "cafe"]
RECNUMS = ["555", "556", "557", "558"]
PIDS = ["c0", "c1", "c2"]


def random_example1_db(rng: random.Random) -> Database:
    db = Database(example1_schema())
    for pnum in PNUMS:
        db.insert("business", (pnum, rng.choice(TYPES), rng.choice(REGIONS)))
    for pkg_id in range(rng.randint(4, 10)):
        year = rng.choice([2015, 2016])
        db.insert(
            "package",
            (
                pkg_id,
                rng.choice(PNUMS),
                rng.choice(PIDS),
                f"{year}-01-01",
                f"{year}-12-31",
                year,
            ),
        )
    for call_id in range(rng.randint(6, 16)):
        db.insert(
            "call",
            (
                call_id,
                rng.choice(PNUMS),
                rng.choice(RECNUMS),
                rng.choice(DATES),
                rng.choice(REGIONS),
            ),
        )
    return db


# --------------------------------------------------------------------------- #
# random query generation (SQL text; all column refs are qualified)
# --------------------------------------------------------------------------- #
def _random_predicates(rng: random.Random, tables: list[str]) -> list[str]:
    choices: list[str] = []
    if "call" in tables:
        choices += [
            f"call.pnum = '{rng.choice(PNUMS)}'",
            f"call.date = '{rng.choice(DATES)}'",
            f"call.region IN ({', '.join(repr(r) for r in rng.sample(REGIONS, 2))})",
            f"call.date >= '{rng.choice(DATES)}'",
            f"call.region <> '{rng.choice(REGIONS)}'",
        ]
    if "business" in tables:
        choices += [
            f"business.type = '{rng.choice(TYPES)}'",
            f"business.region = '{rng.choice(REGIONS)}'",
            f"business.type IN ({', '.join(repr(t) for t in rng.sample(TYPES, 2))})",
        ]
    if "package" in tables:
        choices += [
            f"package.year = {rng.choice([2015, 2016])}",
            f"package.pid = '{rng.choice(PIDS)}'",
            "package.year BETWEEN 2015 AND 2016",
            f"package.start <= '{rng.choice(DATES)}'",
        ]
    rng.shuffle(choices)
    return choices[: rng.randint(1, 3)]


def random_example1_query(rng: random.Random) -> tuple[str, int | None]:
    """One random SPJA query; returns (sql, limit_or_none)."""
    tables = rng.choice(
        [
            ["call"],
            ["business"],
            ["package"],
            ["call", "business"],
            ["call", "package"],
            ["call", "package", "business"],
        ]
    )
    joins: list[str] = []
    if "call" in tables and "business" in tables:
        joins.append("call.pnum = business.pnum")
    if "call" in tables and "package" in tables:
        joins.append("call.pnum = package.pnum")
    if tables == ["package", "business"]:  # pragma: no cover - not generated
        joins.append("package.pnum = business.pnum")

    predicates = joins + _random_predicates(rng, tables)
    where = " AND ".join(predicates)

    shape = rng.random()
    limit: int | None = None
    if shape < 0.25 and len(tables) == 1:
        # aggregates over one table (keeps the oracle obviously right)
        table = tables[0]
        agg_col = {"call": "call.region", "business": "business.pnum", "package": "package.year"}[table]
        select = rng.choice(
            [
                "COUNT(*)",
                f"COUNT(DISTINCT {agg_col})",
                f"MIN({agg_col}), MAX({agg_col})",
            ]
        )
        sql = f"SELECT {select} FROM {table} WHERE {where}"
    elif shape < 0.4 and "call" in tables:
        # GROUP BY with an aggregate
        sql = (
            f"SELECT call.region, COUNT(*) AS n FROM {', '.join(tables)} "
            f"WHERE {where} GROUP BY call.region"
        )
    else:
        columns = {
            "call": ["call.region", "call.recnum", "call.date"],
            "business": ["business.pnum", "business.type"],
            "package": ["package.pid", "package.year"],
        }
        pool = [c for t in tables for c in columns[t]]
        selected = rng.sample(pool, rng.randint(1, min(3, len(pool))))
        distinct = "DISTINCT " if rng.random() < 0.4 else ""
        sql = f"SELECT {distinct}{', '.join(selected)} FROM {', '.join(tables)} WHERE {where}"
        if rng.random() < 0.25:
            limit = rng.randint(1, 5)
            sql += f" LIMIT {limit}"
    return sql, limit


# --------------------------------------------------------------------------- #
# the oracle comparison
# --------------------------------------------------------------------------- #
def _normalise(rows) -> list[tuple]:
    return [
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in rows
    ]


def assert_matches_oracle(db: Database, result, sql: str, limit: int | None) -> None:
    """Compare one BEAS result against the brute-force reference."""
    global _SCENARIOS
    oracle_sql = sql
    if limit is not None:
        oracle_sql = sql[: sql.rfind(" LIMIT ")]  # compare by containment
    reference = _normalise(reference_execute(db, oracle_sql))
    rows = _normalise(result.rows)

    set_semantics = (
        result.mode is ExecutionMode.BOUNDED and not result.decision.bag_exact
    )
    if limit is not None:
        base = sorted(set(reference)) if set_semantics else reference
        assert len(rows) == min(limit, len(base)), (sql, rows, base)
        assert not (Counter(rows) - Counter(base)), (sql, rows, base)
        assert len(set(rows)) == len(rows) if set_semantics else True
    elif set_semantics:
        assert set(rows) == set(reference), (sql, rows, reference)
        assert len(set(rows)) == len(rows), (sql, rows)
    else:
        assert Counter(rows) == Counter(reference), (sql, rows, reference)
    _SCENARIOS += 1


def _maintenance_round(rng: random.Random, server, next_id: int) -> int:
    """One random interleaved insert/delete round through the server."""
    beas = server.beas
    for _ in range(rng.randint(1, 2)):
        action = rng.random()
        try:
            if action < 0.5:
                rows = [
                    (
                        next_id + i,
                        rng.choice(PNUMS),
                        rng.choice(RECNUMS),
                        rng.choice(DATES),
                        rng.choice(REGIONS),
                    )
                    for i in range(rng.randint(1, 3))
                ]
                next_id += len(rows)
                server.insert("call", rows)
            elif action < 0.75:
                year = rng.choice([2015, 2016])
                server.insert(
                    "package",
                    [
                        (
                            1000 + next_id,
                            rng.choice(PNUMS),
                            rng.choice(PIDS),
                            f"{year}-03-01",
                            f"{year}-11-30",
                            year,
                        )
                    ],
                )
                next_id += 1
            else:
                table = beas.database.table(rng.choice(["call", "package"]))
                if table.rows:
                    victims = rng.sample(
                        table.rows, min(len(table.rows), rng.randint(1, 2))
                    )
                    server.delete(table.schema.name, victims)
        except MaintenanceError:
            pass  # REJECT policy refused a violating batch: state unchanged
    return next_id


# --------------------------------------------------------------------------- #
EXAMPLE1_SEEDS = 24
EXAMPLE1_SCENARIOS_PER_SEED = 18  # 4 queries x 2 runs + 2 rounds x (4 + 1)
TLC_SEEDS = 5
TLC_SCENARIOS_PER_SEED = 9  # 3 queries x 2 runs + 3 after maintenance


@pytest.mark.parametrize("seed", range(EXAMPLE1_SEEDS))
def test_example1_differential(seed: int):
    before = _SCENARIOS
    rng = random.Random(987_001 + seed)
    db = random_example1_db(rng)
    beas = BEAS(db, example1_access_schema())
    server = beas.serve()
    queries = [random_example1_query(rng) for _ in range(4)]
    prepared = [server.prepare(sql) for sql, _ in queries]

    # cold + warm (cache-served) runs against the oracle
    for (sql, limit), handle in zip(queries, prepared):
        assert_matches_oracle(db, server.execute(sql), sql, limit)
        warm = handle.execute()
        assert_matches_oracle(db, warm, sql, limit)

    # interleaved maintenance, then the same prepared queries again:
    # every answer must reflect the *new* data
    next_id = 10_000
    for round_index in range(2):
        next_id = _maintenance_round(rng, server, next_id)
        for (sql, limit), handle in zip(queries, prepared):
            assert_matches_oracle(db, handle.execute(), sql, limit)
        # exercise the conventional path on one query per round too
        sql, limit = queries[round_index % len(queries)]
        conventional = beas.execute(sql, allow_partial=False)
        assert_matches_oracle(db, conventional, sql, limit)
    assert _SCENARIOS - before == EXAMPLE1_SCENARIOS_PER_SEED


# --------------------------------------------------------------------------- #
# the TLC schema (truncated instance so the oracle stays affordable)
# --------------------------------------------------------------------------- #
def truncated_tlc_db(source_db: Database, rng: random.Random) -> Database:
    keep = {"call": 80, "package": 50, "business": 40, "sms": 40, "customer": 40}
    db = Database(tlc_schema())
    for table in source_db:
        name = table.schema.name
        rows = table.rows[: keep.get(name, 10)]
        for row in rows:
            db.insert(name, row)
    return db


def random_tlc_query(rng: random.Random, db: Database) -> tuple[str, int | None]:
    calls = db.table("call").rows
    pnum = rng.choice(calls)[1] if calls else "P0000001"
    date = rng.choice(calls)[3] if calls else "2016-06-01"
    kind = rng.random()
    if kind < 0.35:
        return (
            f"SELECT DISTINCT recnum, region FROM call "
            f"WHERE pnum = '{pnum}' AND date = '{date}'",
            None,
        )
    if kind < 0.55:
        return (
            f"SELECT COUNT(DISTINCT region) FROM call WHERE pnum = '{pnum}'",
            None,
        )
    if kind < 0.8:
        businesses = db.table("business").rows
        btype = rng.choice(businesses)[1] if businesses else "bank"
        return (
            f"SELECT business.pnum, package.pid FROM business, package "
            f"WHERE business.pnum = package.pnum AND business.type = '{btype}' "
            f"AND package.year = 2016",
            None,
        )
    limit = rng.randint(1, 4)
    return (
        f"SELECT call.recnum FROM call WHERE call.date = '{date}' LIMIT {limit}",
        limit,
    )


@pytest.mark.parametrize("seed", range(TLC_SEEDS))
def test_tlc_differential(seed: int, tlc_small):
    before = _SCENARIOS
    rng = random.Random(123_400 + seed)
    db = truncated_tlc_db(tlc_small.database, rng)
    beas = BEAS(db, tlc_access_schema())
    server = beas.serve()
    queries = [random_tlc_query(rng, db) for _ in range(3)]
    for sql, limit in queries:
        assert_matches_oracle(db, server.execute(sql), sql, limit)
        assert_matches_oracle(db, server.execute(sql), sql, limit)  # cached

    # delete a few call rows through the serving layer, re-compare
    victims = rng.sample(db.table("call").rows, 3)
    server.delete("call", victims)
    for sql, limit in queries:
        assert_matches_oracle(db, server.execute(sql), sql, limit)
    assert _SCENARIOS - before == TLC_SCENARIOS_PER_SEED


def test_scenario_floor():
    """The acceptance bar: a full run covers at least 200 scenarios.

    Each parametrized test above asserts it performed exactly its share
    (so this arithmetic cannot drift from reality), which keeps this
    check independent of test selection order.
    """
    total = (
        EXAMPLE1_SEEDS * EXAMPLE1_SCENARIOS_PER_SEED
        + TLC_SEEDS * TLC_SCENARIOS_PER_SEED
    )
    assert total >= 200, f"configured for only {total} differential scenarios"


# --------------------------------------------------------------------------- #
# concurrent interleavings: maintenance + prepared executes across threads
# --------------------------------------------------------------------------- #
# The CI concurrency job raises the seed count via BEAS_FUZZ_SEEDS.
CONCURRENT_SEEDS = env_fuzz_seeds(8)  # validated centrally (repro.config)
CONCURRENT_WRITER_TABLES = ("call", "package", "business")  # >= 3 tables
CONCURRENT_WRITE_ROUNDS = 6
CONCURRENT_READERS = 3
CONCURRENT_READS = 9

_CONCURRENT_SCENARIOS = 0


def _concurrent_write_batch(
    table: str, rng: random.Random, thread: int, op: int
) -> list[tuple]:
    """A key-unique batch for one table's single writer thread."""
    base = 70_000 + thread * 1_000 + op * 10
    if table == "call":
        return [
            (
                base + i,
                rng.choice(PNUMS),
                rng.choice(RECNUMS),
                rng.choice(DATES),
                rng.choice(REGIONS),
            )
            for i in range(rng.randint(1, 3))
        ]
    if table == "package":
        year = rng.choice([2015, 2016])
        # fresh pnum per batch keeps psi2's per-(pnum, year) bound safe
        return [
            (
                base,
                f"7{thread}{op:02d}",
                rng.choice(PIDS),
                f"{year}-03-01",
                f"{year}-11-30",
                year,
            )
        ]
    return [(f"8{thread}{op:02d}", rng.choice(TYPES), rng.choice(REGIONS))]


def _concurrent_writer(
    server,
    table: str,
    thread: int,
    rng: random.Random,
    snapshots: dict[str, dict[int, list[tuple]]],
    errors: list,
    barrier: threading.Barrier,
) -> None:
    """The single mutator of ``table``: every version it produces is
    snapshotted, so any version a reader observes can be replayed."""
    from repro.errors import MaintenanceError

    live = server.database.table(table)
    try:
        barrier.wait(timeout=30)
        for op in range(CONCURRENT_WRITE_ROUNDS):
            try:
                if rng.random() < 0.3 and live.rows:
                    victims = rng.sample(
                        live.rows, min(len(live.rows), rng.randint(1, 2))
                    )
                    server.delete(table, victims)
                else:
                    server.insert(
                        table, _concurrent_write_batch(table, rng, thread, op)
                    )
            except MaintenanceError:
                pass  # REJECTed batch: rows unchanged, version still bumped
            # this thread is the table's only writer, so version + rows
            # cannot move between these two reads
            snapshots[table][live.version] = list(live.rows)
    except Exception as error:  # pragma: no cover - assertion target
        errors.append(error)


def _concurrent_reader(
    server,
    queries: list[tuple[str, int | None]],
    observations: list,
    errors: list,
    barrier: threading.Barrier,
) -> None:
    try:
        prepared = [server.prepare(sql) for sql, _ in queries]
        barrier.wait(timeout=30)
        for op in range(CONCURRENT_READS):
            sql, limit = queries[op % len(queries)]
            if op % 2:
                result = prepared[op % len(queries)].execute()
            else:
                result = server.execute(sql)
            observations.append(
                (sql, limit, result, dict(result.metrics.table_versions))
            )
    except Exception as error:  # pragma: no cover - assertion target
        errors.append(error)


def _db_at_versions(
    snapshots: dict[str, dict[int, list[tuple]]], versions: dict[str, int]
) -> Database:
    """Rebuild the dependency tables at one observed version vector."""
    db = Database(example1_schema())
    for table, version in versions.items():
        assert version in snapshots[table], (
            "answer reflects a table version no writer produced "
            "(torn read across shards?)",
            table,
            version,
            sorted(snapshots[table]),
        )
        for row in snapshots[table][version]:
            db.insert(table, row)
    return db


@pytest.mark.parametrize("seed", range(CONCURRENT_SEEDS))
def test_concurrent_differential(seed: int):
    """Interleaved maintenance + prepared executes from multiple threads:
    every answer must equal the brute-force oracle evaluated at the
    consistent table-version vector the server says it observed."""
    global _CONCURRENT_SCENARIOS
    rng = random.Random(555_000 + seed)
    db = random_example1_db(rng)
    beas = BEAS(db, example1_access_schema())
    server = beas.serve()

    snapshots: dict[str, dict[int, list[tuple]]] = {}
    for table in db:
        snapshots[table.schema.name] = {table.version: list(table.rows)}

    reader_queries = [
        [random_example1_query(rng) for _ in range(4)]
        for _ in range(CONCURRENT_READERS)
    ]
    writer_rngs = {
        table: random.Random(rng.random())
        for table in CONCURRENT_WRITER_TABLES
    }

    errors: list = []
    observations: list[list] = [[] for _ in range(CONCURRENT_READERS)]
    barrier = threading.Barrier(
        len(CONCURRENT_WRITER_TABLES) + CONCURRENT_READERS
    )
    threads = [
        threading.Thread(
            target=_concurrent_writer,
            args=(
                server, table, index, writer_rngs[table], snapshots, errors,
                barrier,
            ),
        )
        for index, table in enumerate(CONCURRENT_WRITER_TABLES)
    ] + [
        threading.Thread(
            target=_concurrent_reader,
            args=(
                server, reader_queries[i], observations[i], errors, barrier,
            ),
        )
        for i in range(CONCURRENT_READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert all(not thread.is_alive() for thread in threads), "deadlock"

    # serially verify every concurrent answer against the oracle at the
    # version vector it claims (each observation is one scenario)
    checked = 0
    for per_reader in observations:
        assert len(per_reader) == CONCURRENT_READS
        for sql, limit, result, versions in per_reader:
            oracle_db = _db_at_versions(snapshots, versions)
            assert_matches_oracle(oracle_db, result, sql, limit)
            checked += 1
    assert checked == CONCURRENT_READERS * CONCURRENT_READS
    _CONCURRENT_SCENARIOS += checked


def test_concurrent_scenario_floor():
    """The acceptance bar: >= 200 seeded interleaved scenarios at the
    default seed count (each parametrized run above asserts its exact
    share, so this arithmetic reflects what actually executed)."""
    configured = (
        env_fuzz_seeds(8)
        * CONCURRENT_READERS
        * CONCURRENT_READS
    )
    assert configured >= 200, (
        f"configured for only {configured} concurrent scenarios"
    )
