"""Tests for human-facing output paths: plan descriptions, metrics records,
bench reporting helpers, and the catalog's statistics system table."""

import pytest

from repro import ASCatalog, BoundedEvaluabilityChecker
from repro.bench.reporting import format_table, series_row
from repro.bench.runner import measure
from repro.bounded.plan import SetOpPlan, explain_plan
from repro.engine.metrics import ExecutionMetrics, Stopwatch

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
    example1_schema,
)


@pytest.fixture
def checker():
    return BoundedEvaluabilityChecker(example1_schema(), example1_access_schema())


class TestPlanDescriptions:
    def test_bounded_plan_describe_lists_everything(self, checker):
        plan = checker.check(EXAMPLE2_SQL).plan
        text = explain_plan(plan)
        assert "fetch[psi3]" in text
        assert "fetch[psi2]" in text
        assert "fetch[psi1]" in text
        assert "<= 12000000 tuples" in text
        assert "access bound: 12026000" in text
        assert "bag-exact: False" in text

    def test_fetch_op_describe(self, checker):
        plan = checker.check(EXAMPLE2_SQL).plan
        fetch = plan.fetch_ops[0]
        text = fetch.describe()
        assert "business" in text and "psi3" in text

    def test_set_op_plan_describe(self, checker):
        left = checker.check(
            "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east'"
        ).plan
        right = checker.check(
            "SELECT pnum FROM business WHERE type = 'shop' AND region = 'east'"
        ).plan
        combined = SetOpPlan("UNION", left, right)
        text = combined.describe()
        assert "UNION" in text
        assert combined.access_bound == 4000
        assert combined.bag_exact  # business keyed by pnum; psi3 exposes it

    def test_set_op_all_flag_in_describe(self, checker):
        left = checker.check(
            "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east'"
        ).plan
        combined = SetOpPlan("UNION", left, left, all=True)
        assert "UNION ALL" in combined.describe()


class TestMetrics:
    def test_record_appends_operations(self):
        metrics = ExecutionMetrics()
        op = metrics.record("scan(x)", 10, 5, 0.001)
        assert metrics.operations == [op]
        assert op.tuples_out == 5

    def test_tuples_accessed_combines_scan_and_fetch(self):
        metrics = ExecutionMetrics(tuples_scanned=7, tuples_fetched=3)
        assert metrics.tuples_accessed == 10

    def test_stopwatch_monotonic(self):
        watch = Stopwatch()
        first = watch.lap()
        second = watch.elapsed()
        assert first >= 0 and second >= 0


class TestBenchHelpers:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_series_row(self):
        text = series_row("beas", [0.1, 0.25])
        assert "beas" in text and "0.100s" in text and "0.250s" in text

    def test_measure_returns_value_and_time(self):
        result = measure(lambda: 42)
        assert result.value == 42
        assert result.seconds >= 0


class TestStatisticsSystemTable:
    def test_contents_mirror_catalog(self):
        catalog = ASCatalog(example1_database(), example1_access_schema())
        table = catalog.statistics_table()
        assert table.schema.name == "as_catalog"
        names = {row[0] for row in table.rows}
        assert names == {"psi1", "psi2", "psi3"}
        by_name = {row[0]: row for row in table.rows}
        psi1 = by_name["psi1"]
        stats = catalog.statistics_for("psi1")
        assert psi1[5] == stats.key_count
        assert psi1[6] == stats.entry_count
        assert psi1[8] == stats.storage_cells

    def test_queryable_like_any_relation(self):
        """The system table is a real relation: run SQL over it."""
        from repro import ConventionalEngine, Database

        catalog = ASCatalog(example1_database(), example1_access_schema())
        meta_db = Database(name="meta")
        meta_db.add_table(catalog.statistics_table())
        engine = ConventionalEngine(meta_db)
        result = engine.execute(
            "SELECT constraint_name FROM as_catalog WHERE n > 100 "
            "ORDER BY constraint_name"
        )
        assert result.rows == [("psi1",), ("psi3",)]

    def test_empty_catalog(self):
        catalog = ASCatalog(example1_database())
        assert len(catalog.statistics_table()) == 0
