"""repro.config: the one place every BEAS_* environment variable is read.

Replaces the three ad-hoc ``os.environ`` parses (executor mode, batch
size, pool parallelism) plus the fuzz-seed and pool-start-method reads;
every malformed value must fail construction with a clear
:class:`~repro.errors.BEASError`.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import EnvConfig, load_env_config
from repro import config
from repro.errors import BEASError


class TestValidators:
    def test_executor(self):
        assert config.validate_executor("row") == "row"
        assert config.validate_executor("columnar") == "columnar"
        with pytest.raises(BEASError, match="executor"):
            config.validate_executor("simd")

    def test_rows_per_batch(self):
        assert config.validate_rows_per_batch(1) == 1
        for bad in (0, -1, True, "64", 2.5):
            with pytest.raises(BEASError):
                config.validate_rows_per_batch(bad)

    def test_parallelism(self):
        assert config.validate_parallelism(4) == 4
        for bad in (0, False, "2"):
            with pytest.raises(BEASError):
                config.validate_parallelism(bad)

    def test_dispatch(self):
        for mode in ("auto", "plan", "batch"):
            assert config.validate_dispatch(mode) == mode
        with pytest.raises(BEASError, match="parallel_dispatch"):
            config.validate_dispatch("scatter")

    def test_result_reuse(self):
        for mode in ("exact", "subsume"):
            assert config.validate_result_reuse(mode) == mode
        with pytest.raises(BEASError, match="result_reuse"):
            config.validate_result_reuse("fuzzy")

    def test_routing(self):
        for mode in ("static", "learned"):
            assert config.validate_routing(mode) == mode
        with pytest.raises(BEASError, match="routing"):
            config.validate_routing("oracle")

    def test_routing_epsilon(self):
        assert config.validate_routing_epsilon(0.0) == 0.0
        assert config.validate_routing_epsilon(1.0) == 1.0
        assert config.validate_routing_epsilon(0.25) == 0.25
        for bad in (-0.1, 1.5, True, "0.1", None):
            with pytest.raises(BEASError):
                config.validate_routing_epsilon(bad)

    def test_storage(self):
        for mode in ("memory", "mmap"):
            assert config.validate_storage(mode) == mode
        with pytest.raises(BEASError, match="storage"):
            config.validate_storage("disk")

    def test_storage_dir(self, tmp_path):
        assert config.validate_storage_dir("/var/beas") == "/var/beas"
        # PathLike values normalise to their string form
        assert config.validate_storage_dir(tmp_path) == str(tmp_path)
        for bad in ("", None, 7, True):
            with pytest.raises(BEASError, match="storage_dir"):
                config.validate_storage_dir(bad)


class TestEnvironmentReaders:
    def test_unset_is_none(self, monkeypatch):
        for name in (
            "BEAS_EXECUTOR",
            "BEAS_ROWS_PER_BATCH",
            "BEAS_PARALLELISM",
            "BEAS_POOL_START_METHOD",
            "BEAS_RESULT_REUSE",
            "BEAS_ROUTING",
            "BEAS_ROUTING_EPSILON",
            "BEAS_STORAGE",
            "BEAS_STORAGE_DIR",
        ):
            monkeypatch.delenv(name, raising=False)
        assert config.env_executor() is None
        assert config.env_rows_per_batch() is None
        assert config.env_parallelism() is None
        assert config.env_pool_start_method() is None
        assert config.env_result_reuse() is None
        assert config.env_routing() is None
        assert config.env_routing_epsilon() is None
        assert config.env_storage() is None
        assert config.env_storage_dir() is None

    def test_values_round_trip(self, monkeypatch):
        monkeypatch.setenv("BEAS_EXECUTOR", "columnar")
        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "512")
        monkeypatch.setenv("BEAS_PARALLELISM", "3")
        assert config.env_executor() == "columnar"
        assert config.env_rows_per_batch() == 512
        assert config.env_parallelism() == 3

    @pytest.mark.parametrize(
        "name, value, match",
        [
            ("BEAS_EXECUTOR", "simd", "BEAS_EXECUTOR"),
            ("BEAS_ROWS_PER_BATCH", "lots", "integer"),
            ("BEAS_ROWS_PER_BATCH", "0", ">= 1"),
            ("BEAS_PARALLELISM", "two", "integer"),
            ("BEAS_PARALLELISM", "-1", ">= 1"),
            ("BEAS_POOL_START_METHOD", "teleport", "BEAS_POOL_START_METHOD"),
            ("BEAS_RESULT_REUSE", "fuzzy", "BEAS_RESULT_REUSE"),
            ("BEAS_ROUTING", "oracle", "BEAS_ROUTING"),
            ("BEAS_ROUTING_EPSILON", "greedy", "float"),
            ("BEAS_ROUTING_EPSILON", "1.5", r"\[0, 1\]"),
            ("BEAS_ROUTING_EPSILON", "-0.1", r"\[0, 1\]"),
            ("BEAS_FUZZ_SEEDS", "many", "integer"),
            ("BEAS_FUZZ_SEEDS", "0", ">= 1"),
            ("BEAS_STORAGE", "disk", "BEAS_STORAGE"),
        ],
    )
    def test_malformed_values_raise_at_construction(
        self, monkeypatch, name, value, match
    ):
        monkeypatch.setenv(name, value)
        with pytest.raises(BEASError, match=match):
            load_env_config()

    def test_fuzz_seeds_default(self, monkeypatch):
        monkeypatch.delenv("BEAS_FUZZ_SEEDS", raising=False)
        assert config.env_fuzz_seeds(8) == 8
        monkeypatch.setenv("BEAS_FUZZ_SEEDS", "30")
        assert config.env_fuzz_seeds(8) == 30

    def test_pool_start_method_accepts_available(self, monkeypatch):
        method = multiprocessing.get_all_start_methods()[0]
        monkeypatch.setenv("BEAS_POOL_START_METHOD", method)
        assert config.env_pool_start_method() == method

    def test_result_reuse_round_trip(self, monkeypatch):
        monkeypatch.setenv("BEAS_RESULT_REUSE", "subsume")
        assert config.env_result_reuse() == "subsume"
        monkeypatch.setenv("BEAS_RESULT_REUSE", "exact")
        assert config.env_result_reuse() == "exact"

    def test_storage_round_trip(self, monkeypatch):
        monkeypatch.setenv("BEAS_STORAGE", "mmap")
        monkeypatch.setenv("BEAS_STORAGE_DIR", "/var/beas")
        assert config.env_storage() == "mmap"
        assert config.env_storage_dir() == "/var/beas"
        monkeypatch.delenv("BEAS_STORAGE")
        monkeypatch.delenv("BEAS_STORAGE_DIR")
        assert config.env_storage() is None
        assert config.env_storage_dir() is None

    def test_routing_round_trip(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROUTING", "learned")
        assert config.env_routing() == "learned"
        monkeypatch.setenv("BEAS_ROUTING", "static")
        assert config.env_routing() == "static"
        monkeypatch.setenv("BEAS_ROUTING_EPSILON", "0.35")
        assert config.env_routing_epsilon() == 0.35
        monkeypatch.setenv("BEAS_ROUTING_EPSILON", "0")
        assert config.env_routing_epsilon() == 0.0


class TestEnvConfig:
    def test_load_snapshot(self, monkeypatch):
        monkeypatch.setenv("BEAS_EXECUTOR", "columnar")
        monkeypatch.setenv("BEAS_PARALLELISM", "2")
        monkeypatch.delenv("BEAS_ROWS_PER_BATCH", raising=False)
        monkeypatch.delenv("BEAS_POOL_START_METHOD", raising=False)
        monkeypatch.delenv("BEAS_RESULT_REUSE", raising=False)
        monkeypatch.delenv("BEAS_FUZZ_SEEDS", raising=False)
        monkeypatch.setenv("BEAS_ROUTING", "learned")
        monkeypatch.delenv("BEAS_ROUTING_EPSILON", raising=False)
        monkeypatch.delenv("BEAS_STORAGE", raising=False)
        monkeypatch.delenv("BEAS_STORAGE_DIR", raising=False)
        snapshot = load_env_config()
        assert snapshot == EnvConfig(
            executor="columnar", parallelism=2, routing="learned", fuzz_seeds=8
        )
        text = snapshot.describe()
        assert "BEAS_EXECUTOR=columnar" in text
        assert "BEAS_ROWS_PER_BATCH=(unset)" in text
        assert "BEAS_ROUTING=learned" in text
        assert "BEAS_ROUTING_EPSILON=(unset)" in text

    def test_engine_resolvers_delegate(self, monkeypatch):
        """The historical resolver entry points must honour the central
        validation (BEASError, not ad-hoc messages)."""
        from repro.engine.columnar import (
            resolve_executor_mode,
            resolve_rows_per_batch,
        )
        from repro.engine.pool import resolve_parallelism

        monkeypatch.setenv("BEAS_EXECUTOR", "warp")
        with pytest.raises(BEASError):
            resolve_executor_mode(None)
        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "nan")
        with pytest.raises(BEASError):
            resolve_rows_per_batch(None)
        monkeypatch.setenv("BEAS_PARALLELISM", "-2")
        with pytest.raises(BEASError):
            resolve_parallelism(None)

    def test_beas_construction_reads_the_environment(self, monkeypatch):
        from repro import BEAS
        from tests.conftest import example1_database

        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "nope")
        with pytest.raises(BEASError, match="BEAS_ROWS_PER_BATCH"):
            BEAS(example1_database())
