"""Robustness properties of the SQL frontend.

The lexer/parser must never crash with anything other than the library's
own error types, no matter the input — a property the CLI relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse, parse_script
from repro.sql.tokens import TokenKind


class TestLexerTotality:
    @settings(max_examples=300, deadline=None)
    @given(text=st.text(max_size=60))
    def test_lexer_never_raises_foreign_exceptions(self, text):
        try:
            tokens = tokenize(text)
        except SQLError:
            return
        assert tokens[-1].kind is TokenKind.EOF

    @settings(max_examples=200, deadline=None)
    @given(
        text=st.text(
            alphabet="SELECT FROM WHERE ab,.*()'=<>0123456789\n",
            max_size=80,
        )
    )
    def test_parser_never_raises_foreign_exceptions(self, text):
        try:
            parse(text)
        except SQLError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(
        text=st.text(
            alphabet="CREATE TABLE INSERT INTO VALUES abint(),;'0123456789 ",
            max_size=80,
        )
    )
    def test_script_parser_never_raises_foreign_exceptions(self, text):
        try:
            parse_script(text)
        except SQLError:
            pass


class TestLexerReconstruction:
    @settings(max_examples=200, deadline=None)
    @given(
        words=st.lists(
            st.sampled_from(
                ["SELECT", "a", "b1", "FROM", "t", "WHERE", "=", "<=", "<>",
                 "5", "2.5", "'str''ing'", "(", ")", ",", "*", "AND", "NULL"]
            ),
            max_size=15,
        )
    )
    def test_token_stream_is_stable_under_retokenization(self, words):
        """Tokenizing the joined token texts reproduces the same stream."""
        text = " ".join(words)
        first = tokenize(text)
        rendered = " ".join(t.text if t.kind is not TokenKind.STRING
                            else "'" + t.value.replace("'", "''") + "'"
                            for t in first[:-1])
        second = tokenize(rendered)
        assert [(t.kind, t.value) for t in first] == [
            (t.kind, t.value) for t in second
        ]
