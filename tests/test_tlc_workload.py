"""TLC workload tests: schema shape, generator conformance & determinism,
the 11 built-in queries, and the >90%-coverage claim."""

from collections import Counter

import pytest

from repro import BEAS, ExecutionMode
from repro.access.conformance import check_database
from repro.workloads.tlc import (
    generate_tlc,
    query_by_name,
    tlc_access_schema,
    tlc_queries,
    tlc_schema,
)


class TestSchemaShape:
    def test_twelve_relations(self):
        assert len(tlc_schema()) == 12

    def test_285_attributes_total(self):
        """The paper: 'The benchmark ... has 12 relations with 285
        attributes in total.'"""
        assert tlc_schema().total_attributes() == 285

    def test_paper_relations_verbatim(self):
        schema = tlc_schema()
        call = schema.table("call")
        for attr in ("pnum", "recnum", "date", "region"):
            assert attr in call
        package = schema.table("package")
        for attr in ("pnum", "pid", "start", "end", "year"):
            assert attr in package
        business = schema.table("business")
        for attr in ("pnum", "type", "region"):
            assert attr in business

    def test_every_relation_has_a_key(self):
        for table in tlc_schema():
            assert table.keys, table.name

    def test_paper_constraint_bounds(self):
        schema = tlc_access_schema()
        assert schema.get("psi1").n == 500
        assert schema.get("psi2").n == 12
        assert schema.get("psi3").n == 2000

    def test_access_schema_validates(self):
        tlc_access_schema().validate_against(tlc_schema())


class TestGenerator:
    def test_determinism(self):
        a = generate_tlc(scale=1, seed=7)
        b = generate_tlc(scale=1, seed=7)
        for name in a.database.table_names:
            assert a.database.table(name).rows == b.database.table(name).rows

    def test_seed_changes_data(self):
        a = generate_tlc(scale=1, seed=7)
        b = generate_tlc(scale=1, seed=8)
        assert a.database.table("call").rows != b.database.table("call").rows

    def test_scale_grows_linearly(self):
        one = generate_tlc(scale=1)
        three = generate_tlc(scale=3)
        calls1 = len(one.database.table("call"))
        calls3 = len(three.database.table("call"))
        assert 2.5 < calls3 / calls1 < 3.5

    def test_conforms_to_access_schema(self, tlc_small):
        """The generated data must satisfy every bound of A0."""
        report = check_database(tlc_small.database, tlc_access_schema())
        assert report.conforms, [str(v) for v in report.violations[:3]]

    def test_conforms_at_larger_scale(self):
        ds = generate_tlc(scale=5, seed=99)
        report = check_database(ds.database, tlc_access_schema())
        assert report.conforms

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_tlc(scale=0)

    def test_planted_entities_exist(self, tlc_small):
        db = tlc_small.database
        params = tlc_small.params
        businesses = {
            row[0]
            for row in db.table("business").rows
            if row[1] == params.t0 and row[2] == params.r0
        }
        assert params.p0 in businesses
        planted_calls = [
            row
            for row in db.table("call").rows
            if row[1] == params.p0 and row[3] == params.d0
        ]
        assert len(planted_calls) >= 12

    def test_customers_cover_all_pnums(self, tlc_small):
        db = tlc_small.database
        customers = {row[0] for row in db.table("customer").rows}
        package_pnums = {row[1] for row in db.table("package").rows}
        assert package_pnums <= customers


class TestBuiltInQueries:
    def test_eleven_queries(self, tlc_small):
        assert len(tlc_queries(tlc_small.params)) == 11

    def test_coverage_matches_expectation(self, tlc_beas, tlc_small):
        for query in tlc_queries(tlc_small.params):
            decision = tlc_beas.check(query.sql)
            assert decision.covered == query.covered, query.name

    def test_more_than_90_percent_covered(self, tlc_beas, tlc_small):
        """The paper's industry deployment: BEAS beats the DBMS on >90%
        of queries — here: 10 of 11 TLC queries are covered."""
        queries = tlc_queries(tlc_small.params)
        covered = sum(
            1 for q in queries if tlc_beas.check(q.sql).covered
        )
        assert covered / len(queries) > 0.9

    def test_constraints_used_match_metadata(self, tlc_beas, tlc_small):
        for query in tlc_queries(tlc_small.params):
            if not query.covered:
                continue
            decision = tlc_beas.check(query.sql)
            used = {c.name for c in decision.constraints_used}
            assert used == set(query.constraints), query.name

    def test_all_queries_nonempty(self, tlc_beas, tlc_small):
        """Planted data guarantees meaningful answers at every scale."""
        for query in tlc_queries(tlc_small.params):
            result = tlc_beas.execute(query.sql)
            assert len(result.rows) > 0, query.name

    def test_bounded_answers_equal_host_answers(self, tlc_beas, tlc_small):
        host = tlc_beas.host_engine()
        for query in tlc_queries(tlc_small.params):
            mine = tlc_beas.execute(query.sql)
            theirs = host.execute(query.sql)
            if mine.decision.bag_exact:
                assert Counter(mine.rows) == Counter(theirs.rows), query.name
            else:
                assert set(mine.rows) == set(theirs.rows), query.name

    def test_q1_is_the_paper_example(self, tlc_beas, tlc_small):
        decision = tlc_beas.check(query_by_name(tlc_small.params, "Q1").sql)
        assert decision.access_bound == 12_026_000
        assert [c.name for c in decision.constraints_used] == [
            "psi3", "psi2", "psi1",
        ]

    def test_q7_is_bag_exact(self, tlc_beas, tlc_small):
        decision = tlc_beas.check(query_by_name(tlc_small.params, "Q7").sql)
        assert decision.covered and decision.bag_exact

    def test_q11_takes_partial_route(self, tlc_beas, tlc_small):
        result = tlc_beas.execute(query_by_name(tlc_small.params, "Q11").sql)
        assert result.mode is ExecutionMode.PARTIAL

    def test_query_by_name_unknown(self, tlc_small):
        with pytest.raises(KeyError):
            query_by_name(tlc_small.params, "Q99")

    def test_covered_queries_scan_nothing(self, tlc_beas, tlc_small):
        for query in tlc_queries(tlc_small.params):
            if not query.covered:
                continue
            result = tlc_beas.execute(query.sql)
            assert result.metrics.tuples_scanned == 0, query.name
