"""Unit tests for repro.catalog.statistics."""

import pytest

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import collect_statistics, group_cardinality
from repro.catalog.types import DataType
from repro.storage.table import Table


def make_table() -> Table:
    schema = TableSchema("t", [("a", DataType.INT), ("b", DataType.STRING)])
    return Table(
        schema,
        [
            (1, "x"),
            (1, "y"),
            (2, "x"),
            (3, None),
            (3, "x"),
        ],
    )


class TestCollectStatistics:
    def test_row_count(self):
        assert collect_statistics(make_table()).row_count == 5

    def test_distinct_counts(self):
        stats = collect_statistics(make_table())
        assert stats.distinct("a") == 3
        assert stats.distinct("b") == 2

    def test_null_count(self):
        stats = collect_statistics(make_table())
        assert stats.column("b").null_count == 1
        assert stats.column("a").null_count == 0

    def test_min_max(self):
        stats = collect_statistics(make_table())
        assert stats.column("a").min_value == 1
        assert stats.column("a").max_value == 3

    def test_empty_table(self):
        schema = TableSchema("e", [("a", DataType.INT)])
        stats = collect_statistics(Table(schema))
        assert stats.row_count == 0
        assert stats.distinct("a") == 0
        assert stats.column("a").min_value is None

    def test_selectivity_of_equality(self):
        stats = collect_statistics(make_table())
        assert stats.column("a").selectivity_of_equality(5) == 1 / 3

    def test_selectivity_discounts_nulls(self):
        # b: 5 rows, 1 NULL, 2 distinct — NULL rows never match b = const
        # (3VL), so the estimate is (1 - 1/5) / 2, not 1/2
        stats = collect_statistics(make_table())
        assert stats.column("b").selectivity_of_equality(5) == (1 - 1 / 5) / 2

    def test_selectivity_null_heavy_column(self):
        # 8 of 10 rows NULL, 2 distinct values: without the NULL discount
        # the estimate (1/2) would overshoot the true max (1/10) by 5x
        schema = TableSchema("n", [("c", DataType.STRING)])
        rows = [(None,)] * 8 + [("p",), ("q",)]
        stats = collect_statistics(Table(schema, rows))
        estimate = stats.column("c").selectivity_of_equality(10)
        assert estimate == (1 - 8 / 10) / 2
        # matches the true per-value fraction (up to float rounding)
        assert estimate == pytest.approx(0.1)

    def test_selectivity_all_null_column(self):
        schema = TableSchema("n", [("c", DataType.STRING)])
        stats = collect_statistics(Table(schema, [(None,)] * 4))
        # distinct_count == 0 short-circuits; the non-null fraction guard
        # also covers a default ColumnStatistics with stale null_count
        assert stats.column("c").selectivity_of_equality(4) == 0.0

    def test_selectivity_empty(self):
        schema = TableSchema("e", [("a", DataType.INT)])
        stats = collect_statistics(Table(schema))
        assert stats.column("a").selectivity_of_equality(0) == 0.0

    def test_unknown_column_defaults(self):
        stats = collect_statistics(make_table())
        assert stats.distinct("zz") == 0


class TestGroupCardinality:
    def test_paper_semantics(self):
        """group_cardinality is the smallest valid N for R(X -> Y, N)."""
        table = make_table()
        # a=1 -> {x, y}: 2 distinct b values is the max group
        assert group_cardinality(table, ["a"], ["b"]) == 2

    def test_composite_x(self):
        table = make_table()
        assert group_cardinality(table, ["a", "b"], ["b"]) == 1

    def test_empty_x_bounds_whole_relation(self):
        table = make_table()
        # distinct (a) values overall: 3
        assert group_cardinality(table, [], ["a"]) == 3

    def test_empty_table(self):
        schema = TableSchema("e", [("a", DataType.INT), ("b", DataType.INT)])
        assert group_cardinality(Table(schema), ["a"], ["b"]) == 0

    def test_nulls_count_as_values(self):
        table = make_table()
        # a=3 -> {None, x}: NULL is a distinct Y-value in the index bucket
        groups = group_cardinality(table, ["a"], ["b"])
        assert groups == 2
