"""Unit tests for expression compilation (three-valued logic, LIKE, arithmetic)."""

import pytest

from repro.engine.expressions import compile_expression, compile_predicate, like_to_regex
from repro.errors import ExecutionError
from repro.sql.normalize import Attribute
from repro.sql.parser import parse_expression


LAYOUT = {
    Attribute("t", "a"): 0,
    Attribute("t", "b"): 1,
    Attribute("t", "s"): 2,
    "alias_col": 3,
}


def evaluate(sql: str, row: tuple):
    """Compile an expression over layout t.a, t.b, t.s, alias_col."""
    expr = parse_expression(sql)
    return compile_expression(expr, LAYOUT)(row)


class TestColumnAccess:
    def test_qualified_lookup(self):
        assert evaluate("t.a", (5, None, "x", 0)) == 5

    def test_unqualified_uses_string_label(self):
        assert evaluate("alias_col", (0, 0, "", 9)) == 9

    def test_missing_column_raises_at_compile_time(self):
        with pytest.raises(ExecutionError):
            compile_expression(parse_expression("t.zzz"), LAYOUT)


class TestArithmetic:
    def test_add_mul(self):
        assert evaluate("t.a + t.b * 2", (1, 3, "", 0)) == 7

    def test_integer_division_truncates(self):
        assert evaluate("7 / 2", ()) == 3

    def test_float_division(self):
        assert evaluate("7.0 / 2", ()) == 3.5

    def test_negative_integer_division_truncates_towards_zero(self):
        assert evaluate("-7 / 2", ()) == -3

    def test_modulo(self):
        assert evaluate("7 % 3", ()) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0", ())

    def test_null_propagates(self):
        assert evaluate("t.a + 1", (None, 0, "", 0)) is None

    def test_concat(self):
        assert evaluate("t.s || 'y'", (0, 0, "x", 0)) == "xy"

    def test_concat_null(self):
        assert evaluate("t.s || 'y'", (0, 0, None, 0)) is None

    def test_unary_minus(self):
        assert evaluate("-t.a", (4, 0, "", 0)) == -4


class TestComparisons:
    def test_basic(self):
        assert evaluate("t.a < t.b", (1, 2, "", 0)) is True
        assert evaluate("t.a >= t.b", (1, 2, "", 0)) is False

    def test_null_comparison_is_unknown(self):
        assert evaluate("t.a = 1", (None, 0, "", 0)) is None

    def test_null_equals_null_is_unknown(self):
        assert evaluate("NULL = NULL", ()) is None

    def test_incomparable_types_raise(self):
        with pytest.raises(ExecutionError):
            evaluate("t.a < t.s", (1, 0, "x", 0))


class TestBooleanLogic:
    def test_kleene_and(self):
        assert evaluate("TRUE AND NULL", ()) is None
        assert evaluate("FALSE AND NULL", ()) is False
        assert evaluate("TRUE AND TRUE", ()) is True

    def test_kleene_or(self):
        assert evaluate("TRUE OR NULL", ()) is True
        assert evaluate("FALSE OR NULL", ()) is None
        assert evaluate("FALSE OR FALSE", ()) is False

    def test_not_unknown(self):
        assert evaluate("NOT (NULL = 1)", ()) is None

    def test_predicate_collapses_unknown_to_false(self):
        predicate = compile_predicate(parse_expression("t.a = 1"), LAYOUT)
        assert predicate((None, 0, "", 0)) is False
        assert predicate((1, 0, "", 0)) is True


class TestInBetweenLike:
    def test_in_constant_list(self):
        assert evaluate("t.a IN (1, 2)", (2, 0, "", 0)) is True
        assert evaluate("t.a IN (1, 2)", (3, 0, "", 0)) is False

    def test_not_in(self):
        assert evaluate("t.a NOT IN (1, 2)", (3, 0, "", 0)) is True

    def test_in_with_null_member_unknown_on_miss(self):
        assert evaluate("t.a IN (1, NULL)", (3, 0, "", 0)) is None
        assert evaluate("t.a IN (1, NULL)", (1, 0, "", 0)) is True

    def test_in_null_operand(self):
        assert evaluate("t.a IN (1, 2)", (None, 0, "", 0)) is None

    def test_in_non_constant_items(self):
        assert evaluate("t.a IN (t.b, 9)", (3, 3, "", 0)) is True

    def test_between(self):
        assert evaluate("t.a BETWEEN 1 AND 5", (3, 0, "", 0)) is True
        assert evaluate("t.a BETWEEN 1 AND 5", (7, 0, "", 0)) is False

    def test_not_between(self):
        assert evaluate("t.a NOT BETWEEN 1 AND 5", (7, 0, "", 0)) is True

    def test_between_null(self):
        assert evaluate("t.a BETWEEN 1 AND 5", (None, 0, "", 0)) is None

    def test_like_percent(self):
        assert evaluate("t.s LIKE 'ab%'", (0, 0, "abcdef", 0)) is True
        assert evaluate("t.s LIKE 'ab%'", (0, 0, "xabc", 0)) is False

    def test_like_underscore(self):
        assert evaluate("t.s LIKE 'a_c'", (0, 0, "abc", 0)) is True
        assert evaluate("t.s LIKE 'a_c'", (0, 0, "abbc", 0)) is False

    def test_not_like(self):
        assert evaluate("t.s NOT LIKE 'a%'", (0, 0, "xyz", 0)) is True

    def test_like_escapes_regex_chars(self):
        assert evaluate("t.s LIKE 'a.c'", (0, 0, "a.c", 0)) is True
        assert evaluate("t.s LIKE 'a.c'", (0, 0, "abc", 0)) is False

    def test_like_null(self):
        assert evaluate("t.s LIKE 'a%'", (0, 0, None, 0)) is None

    def test_is_null(self):
        assert evaluate("t.a IS NULL", (None, 0, "", 0)) is True
        assert evaluate("t.a IS NOT NULL", (None, 0, "", 0)) is False


class TestLikeRegex:
    def test_anchoring(self):
        assert like_to_regex("abc").match("abc")
        assert not like_to_regex("abc").match("xabc")

    def test_dotall(self):
        assert like_to_regex("a%c").match("a\nc")


class TestErrors:
    def test_aggregate_outside_context(self):
        with pytest.raises(ExecutionError):
            compile_expression(parse_expression("COUNT(*)"), LAYOUT)

    def test_star_not_scalar(self):
        from repro.sql import ast

        with pytest.raises(ExecutionError):
            compile_expression(ast.Star(), LAYOUT)
