"""Stable fingerprinting: equal up to presentation, distinct otherwise."""

from __future__ import annotations

from repro.sql.fingerprint import (
    canonical_sql,
    statement_fingerprint,
    statement_tables,
)
from repro.sql.parser import parse


class TestFingerprintStability:
    def test_whitespace_and_case_insensitive(self):
        a = "select region from call where pnum = '1'"
        b = "SELECT   region\nFROM call\nWHERE pnum = '1'"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_and_conjunct_order_irrelevant(self):
        a = "SELECT region FROM call WHERE pnum = '1' AND date = 'd' AND region = 'r'"
        b = "SELECT region FROM call WHERE region = 'r' AND pnum = '1' AND date = 'd'"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_nested_and_flattened(self):
        a = "SELECT a FROM r WHERE (a = 1 AND b = 2) AND c = 3"
        b = "SELECT a FROM r WHERE c = 3 AND (b = 2 AND a = 1)"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_in_list_order_irrelevant(self):
        a = "SELECT a FROM r WHERE a IN (3, 1, 2)"
        b = "SELECT a FROM r WHERE a IN (1, 2, 3)"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_in_list_duplicates_share_a_cache_line(self):
        """Membership is multiplicity-independent: ``IN (1, 1, 2)`` and
        ``IN (1, 2)`` must not occupy separate cache lines."""
        a = "SELECT a FROM r WHERE a IN (1, 1, 2)"
        b = "SELECT a FROM r WHERE a IN (1, 2)"
        c = "SELECT a FROM r WHERE a IN (2, 1, 2, 1)"
        assert statement_fingerprint(a) == statement_fingerprint(b)
        assert statement_fingerprint(c) == statement_fingerprint(b)

    def test_not_in_list_duplicates_share_a_cache_line(self):
        a = "SELECT a FROM r WHERE a NOT IN ('x', 'x', 'y')"
        b = "SELECT a FROM r WHERE a NOT IN ('y', 'x')"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_in_list_dedup_is_type_aware(self):
        """1 and '1' are different members — dedup must not conflate
        across types, and a deduped list stays distinct from a subset."""
        a = "SELECT a FROM r WHERE a IN (1, '1')"
        b = "SELECT a FROM r WHERE a IN (1)"
        c = "SELECT a FROM r WHERE a IN (1, 2)"
        assert statement_fingerprint(a) != statement_fingerprint(b)
        assert statement_fingerprint(b) != statement_fingerprint(c)

    def test_or_order_is_preserved(self):
        """OR is commutative too, but we only canonicalise AND chains —
        a missed equivalence is just a cache miss, never a wrong answer."""
        a = "SELECT a FROM r WHERE a = 1 OR b = 2"
        b = "SELECT a FROM r WHERE b = 2 OR a = 1"
        assert statement_fingerprint(a) != statement_fingerprint(b)

    def test_different_constants_differ(self):
        a = "SELECT region FROM call WHERE pnum = '1'"
        b = "SELECT region FROM call WHERE pnum = '2'"
        assert statement_fingerprint(a) != statement_fingerprint(b)

    def test_distinct_flag_differs(self):
        a = "SELECT region FROM call WHERE pnum = '1'"
        b = "SELECT DISTINCT region FROM call WHERE pnum = '1'"
        assert statement_fingerprint(a) != statement_fingerprint(b)

    def test_canonical_sql_round_trips(self):
        sql = "SELECT a FROM r WHERE b = 2 AND a IN (2, 1) AND c LIKE 'x%'"
        canonical = canonical_sql(sql)
        assert canonical_sql(canonical) == canonical
        assert statement_fingerprint(canonical) == statement_fingerprint(sql)

    def test_set_operations_fingerprint(self):
        a = "SELECT a FROM r WHERE b = 1 AND a = 2 UNION SELECT a FROM s"
        b = "SELECT a FROM r WHERE a = 2 AND b = 1 UNION SELECT a FROM s"
        assert statement_fingerprint(a) == statement_fingerprint(b)


class TestStatementTables:
    def test_plain_select(self):
        assert statement_tables(parse("SELECT a FROM r, s WHERE r.a = s.a")) == {
            "r",
            "s",
        }

    def test_joins_and_aliases(self):
        stmt = parse("SELECT x.a FROM r AS x JOIN s ON x.a = s.a")
        assert statement_tables(stmt) == {"r", "s"}

    def test_set_operation(self):
        stmt = parse("SELECT a FROM r UNION SELECT a FROM t")
        assert statement_tables(stmt) == {"r", "t"}


class TestBetweenCanonicalisation:
    """BETWEEN and its conjunct spelling must share one cache line —
    except when a bound's NULL semantics make the rewrite unsound."""

    def test_between_equals_conjunct_spelling(self):
        a = "SELECT region FROM call WHERE date BETWEEN '2016-01-01' AND '2016-06-30'"
        b = "SELECT region FROM call WHERE date >= '2016-01-01' AND date <= '2016-06-30'"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_between_sorts_with_sibling_conjuncts(self):
        # the introduced conjuncts must land in the same sorted position
        # as hand-written ones, whatever order they were spelled in
        a = "SELECT region FROM call WHERE pnum = '1' AND date BETWEEN 'a' AND 'b'"
        b = "SELECT region FROM call WHERE date <= 'b' AND pnum = '1' AND date >= 'a'"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_not_between_equals_disjunct_spelling(self):
        a = "SELECT region FROM call WHERE date NOT BETWEEN 'a' AND 'b'"
        b = "SELECT region FROM call WHERE date < 'a' OR date > 'b'"
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_null_bound_keeps_distinct_fingerprints(self):
        # x NOT BETWEEN NULL AND 5 is UNKNOWN for x=10 under the engine's
        # BETWEEN, but x < NULL OR x > 5 is TRUE — not the same query
        a = "SELECT a FROM r WHERE a NOT BETWEEN NULL AND 5"
        b = "SELECT a FROM r WHERE a < NULL OR a > 5"
        assert statement_fingerprint(a) != statement_fingerprint(b)
        c = "SELECT a FROM r WHERE a BETWEEN NULL AND 5"
        d = "SELECT a FROM r WHERE a >= NULL AND a <= 5"
        assert statement_fingerprint(c) != statement_fingerprint(d)

    def test_column_bound_keeps_distinct_fingerprints(self):
        # a column-valued bound may be NULL at runtime: no rewrite
        a = "SELECT a FROM r WHERE a BETWEEN b AND 5"
        b = "SELECT a FROM r WHERE a >= b AND a <= 5"
        assert statement_fingerprint(a) != statement_fingerprint(b)

    def test_between_canonical_sql_is_conjunct_form(self):
        text = canonical_sql("SELECT a FROM r WHERE a BETWEEN 1 AND 2")
        assert "BETWEEN" not in text.upper()
