"""Chaos suite for the engine pool: answers are never wrong, only slower.

Injects the failure modes a long-running multiprocess deployment will
eventually hit — a worker dying mid-task, a worker whose warm catalog
snapshot has silently gone stale, every worker busy (pool exhaustion),
and a pool shut down under live traffic — and asserts that each one
degrades to a correct answer (equal to the in-process oracle) plus the
right recovery bookkeeping (respawns, stale retries, fallbacks).

The one *semantic* failure — a fetch exceeding its deduced §3 bound
because the data no longer conforms — must NOT be swallowed by the
fallback machinery: the worker relays it and the master re-raises,
exactly as the in-process executor would.
"""

from __future__ import annotations

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    BoundedPlanExecutor,
    Database,
    DatabaseSchema,
    DataType,
    EnginePool,
    TableSchema,
)
from repro.beas.result import ExecutionMode
from repro.errors import ExecutionError


# --------------------------------------------------------------------------- #
# fixtures: a two-fetch workload and a deterministic one-worker pool
# --------------------------------------------------------------------------- #
def make_workload():
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [
                    ("k", DataType.STRING),
                    ("g", DataType.STRING),
                    ("u", DataType.STRING),
                ],
                keys=[("u",)],
            ),
            TableSchema(
                "s",
                [("g", DataType.STRING), ("v", DataType.STRING)],
                keys=[("g", "v")],
            ),
        ]
    )
    db = Database(schema)
    for i in range(24):
        db.insert("t", ("k", f"g{i % 4}", f"u{i:04d}"))
    for i in range(4):
        db.insert("s", (f"g{i}", f"v{i}"))
    access = AccessSchema(
        [
            AccessConstraint("t", ["k"], ["g", "u"], 40, name="t_by_k"),
            AccessConstraint("s", ["g"], ["v"], 2, name="s_by_g"),
        ]
    )
    sql = (
        "SELECT t.u, s.v FROM t, s "
        "WHERE t.k = 'k' AND t.g = s.g ORDER BY t.u"
    )
    return db, access, sql


@pytest.fixture
def workload():
    return make_workload()


def pooled_executor(beas: BEAS, pool: EnginePool, dispatch: str):
    """A BoundedPlanExecutor over an explicit (usually 1-worker) pool, so
    chaos hooks deterministically hit the worker that will serve the
    next task."""
    return BoundedPlanExecutor(
        beas.catalog,
        executor="columnar",
        rows_per_batch=4,
        pool=pool,
        dispatch=dispatch,
    )


def expected_result(beas: BEAS, sql: str):
    return beas.bounded_executor("columnar").execute(beas.check(sql).plan)


# --------------------------------------------------------------------------- #
# worker death mid-batch
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dispatch", ["plan", "batch"])
def test_worker_death_mid_task_falls_back_and_respawns(workload, dispatch):
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=1)
    oracle = expected_result(beas, sql)
    plan = beas.check(sql).plan
    with EnginePool(1) as pool:
        executor = pooled_executor(beas, pool, dispatch)
        # arm the only worker: it exits the process mid-way through the
        # NEXT compute task — after the master committed to dispatching
        pool.debug("die_on_next_task")
        result = executor.execute(plan)
        assert result.rows == oracle.rows
        assert result.metrics.tuples_fetched == oracle.metrics.tuples_fetched
        # the outcome is attributed as a (partly) serial run: the router
        # must never learn pooled-mode costs from it
        assert result.metrics.pool_fallbacks >= 1
        stats = pool.stats()
        assert stats.worker_deaths == 1
        assert stats.respawns == 1
        assert stats.alive == 1  # a fresh worker replaced the casualty

        # the respawned worker serves the same plan remotely again
        # (fresh snapshot: the replacement starts empty)
        again = executor.execute(plan)
        assert again.rows == oracle.rows
        after = pool.stats()
        assert after.plans_dispatched + after.chunks_dispatched > 0
        assert after.snapshots_sent >= 2


def test_repeated_worker_deaths_never_corrupt_answers(workload):
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=1)
    oracle = expected_result(beas, sql)
    plan = beas.check(sql).plan
    with EnginePool(2) as pool:
        executor = pooled_executor(beas, pool, "plan")
        for round_number in range(4):
            if round_number % 2 == 0:
                pool.debug("die_on_next_task")
            result = executor.execute(plan)
            assert result.rows == oracle.rows, f"round {round_number}"
        stats = pool.stats()
        assert stats.worker_deaths >= 2
        assert stats.alive == 2


# --------------------------------------------------------------------------- #
# stale snapshots
# --------------------------------------------------------------------------- #
def test_silently_stale_worker_snapshot_is_detected_and_retried(workload):
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=1)
    oracle = expected_result(beas, sql)
    plan = beas.check(sql).plan
    with EnginePool(1) as pool:
        executor = pooled_executor(beas, pool, "plan")
        assert executor.execute(plan).rows == oracle.rows  # snapshot warm
        # corrupt the WORKER's installed snapshot key without the master
        # noticing: the master's bookkeeping now claims the worker is
        # fresh while it is not — the per-task key check must catch it
        pool.debug("set_snapshot_key", ("bogus", "generation"))
        result = executor.execute(plan)
        assert result.rows == oracle.rows
        # the stale snapshot was re-shipped and the task retried on the
        # worker — a genuinely pooled run, not a fallback
        assert result.metrics.pool_fallbacks == 0
        stats = pool.stats()
        assert stats.stale_retries >= 1
        assert stats.snapshots_sent >= 2  # the snapshot was re-sent


def test_maintenance_refreshes_worker_snapshots(workload):
    """The version-vector snapshot key: after an insert, pooled answers
    must reflect the new data — a worker can never serve the old rows."""
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=2)
    try:
        first = beas.execute(sql)
        assert first.mode is ExecutionMode.BOUNDED
        baseline_rows = len(first.rows)
        beas.insert("t", [("k", "g0", "u9998"), ("k", "g1", "u9999")])
        fresh_oracle = BEAS(db, access, parallelism=1).execute(sql)
        second = beas.execute(sql)
        assert len(second.rows) == baseline_rows + 2
        assert second.rows == fresh_oracle.rows
        stats = beas.pool_stats()
        assert stats is not None and stats.snapshots_sent >= 2
    finally:
        beas.close()


# --------------------------------------------------------------------------- #
# pool exhaustion
# --------------------------------------------------------------------------- #
def test_pool_exhaustion_falls_back_in_process(workload):
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=1)
    oracle = expected_result(beas, sql)
    plan = beas.check(sql).plan
    with EnginePool(1, acquire_timeout=0.01) as pool:
        executor = pooled_executor(beas, pool, "auto")
        busy = pool.acquire()  # hold the only worker hostage
        assert busy is not None
        try:
            result = executor.execute(plan)
            assert result.rows == oracle.rows
            assert result.metrics.pool_batches == 0  # everything ran local
            assert result.metrics.pool_fallbacks >= 1  # attributed as serial
            stats = pool.stats()
            assert stats.exhaustion_fallbacks >= 1
            assert stats.plans_dispatched == 0
        finally:
            pool.release(busy)
        # once the worker is back, dispatch resumes — and the clean
        # pooled run carries no fallback attribution
        resumed = executor.execute(plan)
        assert resumed.rows == oracle.rows
        assert resumed.metrics.pool_fallbacks == 0
        assert pool.stats().plans_dispatched == 1


def test_closed_pool_falls_back(workload):
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=1)
    oracle = expected_result(beas, sql)
    plan = beas.check(sql).plan
    pool = EnginePool(1)
    executor = pooled_executor(beas, pool, "auto")
    pool.close()
    result = executor.execute(plan)
    assert result.rows == oracle.rows
    assert result.metrics.pool_batches == 0
    # a closed pool means no pooled dispatch was ever *attempted*, so
    # nothing to attribute: this is an ordinary serial execution
    assert result.metrics.pool_fallbacks == 0


# --------------------------------------------------------------------------- #
# semantic errors must propagate, not fall back
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dispatch", ["plan", "batch"])
def test_bound_exceeded_propagates_from_workers(dispatch):
    """Non-conforming data (index built with validate=False) blows the
    deduced fetch bound; the pooled run must raise the same
    ExecutionError the in-process run does — never silently fall back
    into a 'successful' answer."""
    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [("k", DataType.STRING), ("u", DataType.STRING)],
                keys=[("u",)],
            )
        ]
    )
    db = Database(schema)
    for i in range(9):  # 9 distinct Y-values under one key, against N=2
        db.insert("t", ("k", f"u{i}"))
    beas = BEAS(db, parallelism=1)
    # registered without conformance validation: the deduced bound (N=2)
    # is stale relative to the actual data, so every fetch overruns it
    beas.register(
        AccessConstraint("t", ["k"], ["u"], 2, name="t_by_k"), validate=False
    )
    sql = "SELECT DISTINCT u FROM t WHERE k = 'k'"
    plan = beas.check(sql).plan
    with pytest.raises(ExecutionError, match="exceeding its deduced bound"):
        beas.bounded_executor("columnar").execute(plan)
    with EnginePool(1) as pool:
        executor = pooled_executor(beas, pool, dispatch)
        with pytest.raises(ExecutionError, match="exceeding its deduced bound"):
            executor.execute(plan)


# --------------------------------------------------------------------------- #
# pool plumbing
# --------------------------------------------------------------------------- #
def test_debug_ping_and_repr():
    with EnginePool(1) as pool:
        reply = pool.debug("ping")
        assert reply[0] == "pong" and isinstance(reply[1], int)
    assert pool.closed


def test_serving_layer_survives_worker_chaos(workload):
    """End to end: a prepared query keeps answering correctly through the
    sharded serving layer while its pool workers are killed."""
    db, access, sql = workload
    beas = BEAS(db, access, parallelism=2)
    oracle = BEAS(db, access, parallelism=1).serve().execute(sql)
    try:
        server = beas.serve()
        first = server.execute(sql, use_result_cache=False)
        assert first.rows == oracle.rows
        pool = beas.pool
        assert pool is not None
        pool.debug("die_on_next_task")
        for _ in range(3):
            result = server.execute(sql, use_result_cache=False)
            assert result.rows == oracle.rows
        stats = beas.pool_stats()
        assert stats is not None and stats.alive == 2
    finally:
        beas.close()


# --------------------------------------------------------------------------- #
# shared-memory snapshot wire (mmap storage engine)
# --------------------------------------------------------------------------- #
def test_empty_bucket_index_installs_under_full_snapshot_key(tmp_path):
    """Regression: an access index over a relation with ZERO rows still
    ships to pool workers under the full (schema generation, version
    vector) snapshot key — the covered query answers [] through the
    pool, never 'unsupported', and the install never degenerates into a
    stale-retry loop."""
    schema = DatabaseSchema(
        [
            TableSchema(
                "e",
                [("k", DataType.STRING), ("u", DataType.STRING)],
                keys=[("u",)],
            )
        ]
    )
    db = Database(schema)  # deliberately: no rows at all
    access = AccessSchema(
        [AccessConstraint("e", ["k"], ["u"], 5, name="e_by_k")]
    )
    beas = BEAS(
        db, access, parallelism=2, storage="mmap", storage_dir=tmp_path
    )
    try:
        result = beas.execute("SELECT DISTINCT u FROM e WHERE k = 'x'")
        assert result.mode is ExecutionMode.BOUNDED
        assert result.rows == []
        stats = beas.pool_stats()
        assert stats is not None
        assert stats.shm_attaches >= 1
        assert stats.stale_retries == 0
    finally:
        beas.close()


def test_shm_exporter_decline_falls_back_to_pickle_wire(tmp_path, workload):
    """When the shared-memory exporter declines (shm exhausted, block
    raced away), the SAME _ensure_snapshot call must fall back to the
    pickle wire — counted in shm_fallbacks, answers unchanged."""
    db, access, sql = workload
    beas = BEAS(
        db, access, parallelism=2, storage="mmap", storage_dir=tmp_path
    )
    try:
        oracle = BEAS(db, access, parallelism=1).execute(sql)
        first = beas.execute(sql)
        assert first.rows == oracle.rows
        pool = beas.pool
        assert pool is not None
        assert pool.stats().shm_attaches >= 1
        pool._snapshot_exporter = lambda key, payload_fn: None
        # maintenance bumps the version vector, forcing a re-ship that
        # can no longer ride the shm wire
        beas.insert("t", [("k", "g0", "u9998")])
        fresh_oracle = BEAS(db, access, parallelism=1).execute(sql)
        second = beas.execute(sql)
        assert second.rows == fresh_oracle.rows
        stats = beas.pool_stats()
        assert stats is not None
        assert stats.shm_fallbacks >= 1
        assert stats.snapshot_bytes_shipped > 0
    finally:
        beas.close()


def test_router_never_trains_pooled_models_on_fallbacks(workload):
    """A pooled execution that fell back in-process (ExecutionMetrics
    .pool_fallbacks > 0) is skipped by ExecutorRouter.observe — the
    pooled cost model must not learn from serial latencies."""
    from repro.engine.metrics import ExecutionMetrics
    from repro.engine.router import ExecutorRouter, routing_features

    db, access, sql = workload
    beas = BEAS(db, access, parallelism=1)
    plan = beas.check(sql).plan
    features = routing_features(
        plan, {}, rows_per_batch=4, parallelism=2
    )
    router = ExecutorRouter(parallelism=2)
    fallback = ExecutionMetrics(seconds=0.5, pool_fallbacks=1)
    clean = ExecutionMetrics(seconds=0.5)
    router.observe("fp", "pooled-plan", features, fallback)
    router.observe("fp", "pooled-batch", features, fallback)
    assert router.stats().observations == 0
    assert router.stats().fallback_skips == 2
    # serial routes train regardless (a serial run IS a serial cost),
    # and clean pooled runs train normally
    router.observe("fp", "row", features, fallback)
    router.observe("fp", "pooled-plan", features, clean)
    assert router.stats().observations == 2
    assert router.stats().fallback_skips == 2
