"""Crash-recovery suite for the persistent mmap storage engine.

Every failure mode a crash can leave on disk must recover to a state
the brute-force oracle agrees with, or fall back to a cold rebuild —
never serve from a half-applied store:

* a torn WAL tail (partial header, short payload, CRC flip) is
  truncated to the longest consistent prefix and replay continues,
* a half-written or bit-flipped segment fails ``try_load`` and the
  engine cold-rebuilds from base data (then re-checkpoints),
* kill -9 mid-maintenance recovers *exactly* the last fully-logged
  batch: the differential test compares the recovered index buckets
  and query answers against an oracle rebuilt from scratch at the
  recovered version vector.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from repro import BEAS
from repro.access.catalog import ASCatalog
from repro.access.constraint import AccessConstraint
from repro.access.index import AccessIndex
from repro.access.schema import AccessSchema
from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.catalog.types import DataType
from repro.storage.codec import CANONICAL_NAN
from repro.storage.database import Database
from repro.storage.mmapstore import MmapStore
from repro.storage.wal import WriteAheadLog, frame_record

SRC = Path(__file__).resolve().parent.parent / "src"
ROOT = SRC.parent

QUERY = (
    "SELECT DISTINCT recnum, amount FROM event "
    "WHERE k = 'k000' AND date = '2016-06-01'"
)


def event_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            TableSchema(
                "event",
                [
                    ("k", DataType.STRING),
                    ("date", DataType.STRING),
                    ("recnum", DataType.STRING),
                    ("amount", DataType.FLOAT),
                ],
                keys=[("recnum",)],
            )
        ]
    )


def build_base() -> Database:
    """A deterministic base dataset, identical on every call — the
    kill-9 child and the recovering parent must fingerprint equal."""
    db = Database(event_schema())
    for i in range(120):
        db.insert(
            "event",
            (
                f"k{i % 6:03d}",
                "2016-06-01" if i % 2 == 0 else "2016-06-02",
                f"r{i:05d}",
                float(i),
            ),
        )
    # float specials ride through the segment + WAL codecs
    db.insert("event", ("k000", "2016-06-01", "rnan0", float("nan")))
    db.insert("event", ("k000", "2016-06-01", "rinf0", float("inf")))
    db.insert("event", ("k000", "2016-06-01", "rnull", None))
    return db


ACCESS = AccessSchema(
    [
        AccessConstraint(
            "event",
            ["k", "date"],
            ["recnum", "amount"],
            500_000,
            name="by_key",
        )
    ],
    name="A-persist",
)


def gen_insert(i: int) -> tuple:
    return (f"k{i % 6:03d}", "2016-06-01", f"w{i:06d}", float(i))


# --------------------------------------------------------------------------- #
# WAL framing under torn tails
# --------------------------------------------------------------------------- #
class TestWalRepair:
    def _log_with_records(self, tmp_path, count=3) -> WriteAheadLog:
        wal = WriteAheadLog(tmp_path / "log.wal")
        for i in range(count):
            wal.append({"op": "insert", "seq": i})
        wal.close()
        return wal

    def test_partial_header_tail_is_truncated(self, tmp_path):
        wal = self._log_with_records(tmp_path)
        with open(wal.path, "ab") as handle:
            handle.write(b"\x07\x00")  # 2 of the 8 header bytes
        report = wal.replay(repair=True)
        assert [r["seq"] for r in report.records] == [0, 1, 2]
        assert report.truncated and report.dropped_bytes == 2
        # the repair leaves a consistent prefix: appends continue from it
        wal.append({"op": "insert", "seq": 3})
        wal.close()
        assert [r["seq"] for r in wal.replay().records] == [0, 1, 2, 3]

    def test_short_payload_tail_is_truncated(self, tmp_path):
        wal = self._log_with_records(tmp_path)
        frame = frame_record(b'{"op":"insert","seq":9}')
        with open(wal.path, "ab") as handle:
            handle.write(frame[:-4])  # crash mid-payload
        report = wal.replay(repair=True)
        assert [r["seq"] for r in report.records] == [0, 1, 2]
        assert report.truncated and report.reason == "short frame payload"

    def test_crc_flip_drops_the_flipped_record_and_everything_after(
        self, tmp_path
    ):
        wal = self._log_with_records(tmp_path, count=3)
        data = bytearray(wal.path.read_bytes())
        # flip one payload byte of the middle record: the WAL is an
        # ordered history, so record 2 must NOT survive record 1's loss
        middle = len(data) // 2
        data[middle] ^= 0xFF
        wal.path.write_bytes(bytes(data))
        report = wal.replay(repair=True)
        assert len(report.records) < 3
        assert report.truncated
        assert report.reason in (
            "frame checksum mismatch",
            "frame payload is not valid JSON",
            "implausible frame length "
            f"{int.from_bytes(bytes(data[middle:middle + 4]), 'little')}",
        ) or report.reason.startswith("implausible frame length")
        # the surviving prefix is exactly the records before the flip
        assert [r["seq"] for r in report.records] == list(
            range(len(report.records))
        )

    def test_non_object_payload_is_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.append({"op": "insert", "seq": 0})
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(frame_record(b"[1, 2, 3]"))  # valid CRC, wrong shape
        report = wal.replay(repair=True)
        assert [r["seq"] for r in report.records] == [0]
        assert report.truncated


# --------------------------------------------------------------------------- #
# warm restart through the BEAS constructor
# --------------------------------------------------------------------------- #
class TestWarmRestart:
    def test_wal_replay_recovers_maintenance(self, tmp_path):
        first = BEAS(
            build_base(), ACCESS, storage="mmap", storage_dir=tmp_path
        )
        for i in range(5):
            first.insert("event", [gen_insert(i)])
        first.delete("event", [gen_insert(0)])
        expected = first.execute(QUERY)
        version = first.database.table("event").version
        first.close()

        second = BEAS(
            build_base(), ACCESS, storage="mmap", storage_dir=tmp_path
        )
        stats = second.storage_stats()
        assert stats is not None and stats.warm_start
        assert stats.wal_records_replayed >= 6
        assert second.database.table("event").version == version
        recovered = second.execute(QUERY)
        assert recovered.rows == expected.rows
        second.close()

    def test_base_data_drift_forces_cold_rebuild(self, tmp_path):
        BEAS(build_base(), ACCESS, storage="mmap", storage_dir=tmp_path).close()
        drifted = build_base()
        drifted.insert("event", ("k000", "2016-06-01", "extra", 1.0))
        beas = BEAS(drifted, ACCESS, storage="mmap", storage_dir=tmp_path)
        stats = beas.storage_stats()
        assert stats is not None and not stats.warm_start
        oracle_db = build_base()
        oracle_db.insert("event", ("k000", "2016-06-01", "extra", 1.0))
        oracle = BEAS(oracle_db, ACCESS)
        assert beas.execute(QUERY).rows == oracle.execute(QUERY).rows
        beas.close()
        oracle.close()

    def test_access_schema_drift_forces_cold_rebuild(self, tmp_path):
        BEAS(build_base(), ACCESS, storage="mmap", storage_dir=tmp_path).close()
        narrower = AccessSchema(
            [
                AccessConstraint(
                    "event", ["k", "date"], ["recnum"], 500_000, name="by_key"
                )
            ],
            name="A-persist",
        )
        beas = BEAS(
            build_base(), narrower, storage="mmap", storage_dir=tmp_path
        )
        stats = beas.storage_stats()
        assert stats is not None and not stats.warm_start
        beas.close()

    def test_adjust_record_widens_recovered_bound(self, tmp_path):
        db = build_base()
        catalog = ASCatalog(db, ACCESS)
        store = MmapStore(tmp_path)
        store.checkpoint(catalog)
        store.log_adjust("by_key", 750_000)
        store.close()

        fresh = ASCatalog(build_base())
        fresh.schema = AccessSchema(name="A-persist")
        reopened = MmapStore(tmp_path)
        assert reopened.try_load(fresh)
        assert fresh.schema.get("by_key").n == 750_000
        reopened.close()

    def test_float_specials_round_trip_the_store(self, tmp_path):
        first = BEAS(
            build_base(), ACCESS, storage="mmap", storage_dir=tmp_path
        )
        expected = first.execute(QUERY)
        first.close()
        second = BEAS(
            build_base(), ACCESS, storage="mmap", storage_dir=tmp_path
        )
        assert second.storage_stats().warm_start
        constraint = ACCESS.get("by_key")
        index = second.catalog.index_for(constraint)
        key_parts = {"k": "k000", "date": "2016-06-01"}
        bucket = index.fetch(
            tuple(key_parts[attr] for attr in constraint.x)
        )
        recnum_pos = constraint.y.index("recnum")
        amount_pos = constraint.y.index("amount")
        by_recnum = {y[recnum_pos]: y[amount_pos] for y in bucket}
        assert by_recnum["rnan0"] is CANONICAL_NAN
        assert by_recnum["rinf0"] == float("inf")
        assert by_recnum["rnull"] is None
        assert second.execute(QUERY).rows == expected.rows
        second.close()


# --------------------------------------------------------------------------- #
# corrupt store artifacts: never serve, always cold-rebuild
# --------------------------------------------------------------------------- #
class TestCorruptStore:
    def _seed_store(self, tmp_path) -> Path:
        BEAS(build_base(), ACCESS, storage="mmap", storage_dir=tmp_path).close()
        segments = sorted((tmp_path / "segments").glob("*.seg"))
        assert segments, "cold build must checkpoint at least one segment"
        return segments[0]

    def _assert_cold_but_correct(self, tmp_path):
        beas = BEAS(build_base(), ACCESS, storage="mmap", storage_dir=tmp_path)
        stats = beas.storage_stats()
        assert stats is not None and not stats.warm_start
        oracle = BEAS(build_base(), ACCESS)
        assert beas.execute(QUERY).rows == oracle.execute(QUERY).rows
        beas.close()
        oracle.close()
        # the rebuild re-checkpointed: a third start is warm again
        third = BEAS(build_base(), ACCESS, storage="mmap", storage_dir=tmp_path)
        assert third.storage_stats().warm_start
        third.close()

    def test_bit_flipped_segment_falls_back_cold(self, tmp_path):
        segment = self._seed_store(tmp_path)
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        self._assert_cold_but_correct(tmp_path)

    def test_half_written_segment_falls_back_cold(self, tmp_path):
        segment = self._seed_store(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[: len(data) // 2])
        self._assert_cold_but_correct(tmp_path)

    def test_missing_segment_falls_back_cold(self, tmp_path):
        self._seed_store(tmp_path).unlink()
        self._assert_cold_but_correct(tmp_path)

    def test_garbage_manifest_falls_back_cold(self, tmp_path):
        self._seed_store(tmp_path)
        (tmp_path / "MANIFEST.json").write_text("{not json")
        self._assert_cold_but_correct(tmp_path)

    def test_torn_wal_tail_still_warm_starts(self, tmp_path):
        first = BEAS(build_base(), ACCESS, storage="mmap", storage_dir=tmp_path)
        for i in range(4):
            first.insert("event", [gen_insert(i)])
        expected = first.execute(QUERY)
        first.close()
        with open(tmp_path / "wal.log", "ab") as handle:
            handle.write(b"\x99\x00\x00")  # crash mid-append
        second = BEAS(
            build_base(), ACCESS, storage="mmap", storage_dir=tmp_path
        )
        stats = second.storage_stats()
        assert stats is not None and stats.warm_start
        assert stats.wal_dropped_bytes == 3
        assert second.execute(QUERY).rows == expected.rows
        second.close()


# --------------------------------------------------------------------------- #
# kill -9 mid-maintenance: differential against the brute-force oracle
# --------------------------------------------------------------------------- #
CHILD_SCRIPT = textwrap.dedent(
    """\
    import sys
    sys.path[:0] = [{src!r}, {root!r}]
    from repro import BEAS
    from tests.test_storage_persistence import ACCESS, build_base, gen_insert

    beas = BEAS(build_base(), ACCESS, storage="mmap", storage_dir=sys.argv[1])
    for i in range(100_000):
        beas.insert("event", [gen_insert(i)])
        print(i, flush=True)
    """
)


def test_kill9_recovers_exactly_the_logged_prefix(tmp_path):
    base_version = build_base().table("event").version
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT.format(src=str(SRC), root=str(ROOT)))
    store_dir = tmp_path / "store"
    child = subprocess.Popen(
        [sys.executable, str(script), str(store_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        assert child.stdout is not None
        for line in child.stdout:
            if int(line) >= 30:  # ensure a non-trivial logged prefix
                break
        os.kill(child.pid, signal.SIGKILL)
    finally:
        child.kill()
        child.wait(timeout=30)

    recovered = BEAS(
        build_base(), ACCESS, storage="mmap", storage_dir=store_dir
    )
    stats = recovered.storage_stats()
    assert stats is not None and stats.warm_start, "store must warm-start"
    applied = recovered.database.table("event").version - base_version
    assert applied >= 30, "at least the acknowledged inserts must replay"

    # brute-force oracle at the recovered version vector: base data plus
    # exactly the first `applied` maintenance rows, indices from scratch
    oracle_db = build_base()
    for i in range(applied):
        oracle_db.insert("event", gen_insert(i))
    constraint = ACCESS.get("by_key")
    oracle_index = AccessIndex(constraint, oracle_db.table("event"))
    recovered_index = recovered.catalog.index_for(constraint)
    assert recovered_index.snapshot() == oracle_index.snapshot(), (
        "recovered buckets diverge from a from-scratch rebuild at the "
        "recovered version vector"
    )

    oracle = BEAS(oracle_db, ACCESS)
    recovered_answer = recovered.execute(QUERY)
    oracle_answer = oracle.execute(QUERY)
    assert recovered_answer.rows == oracle_answer.rows
    assert (
        recovered_answer.metrics.tuples_fetched
        == oracle_answer.metrics.tuples_fetched
    )
    recovered.close()
    oracle.close()
