"""Property-based equivalence: the real engine vs the brute-force oracle.

Random small databases and random SPJA queries; any disagreement is an
engine (or oracle) bug. Queries avoid ORDER BY so results compare as
multisets.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConventionalEngine, Database, DatabaseSchema, DataType, TableSchema
from tests.reference_evaluator import reference_execute


def build_db(r_rows, s_rows) -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "r", [("a", DataType.INT), ("b", DataType.INT), ("c", DataType.STRING)]
            ),
            TableSchema("s", [("a", DataType.INT), ("d", DataType.STRING)]),
        ]
    )
    db = Database(schema)
    for row in r_rows:
        db.insert("r", row)
    for row in s_rows:
        db.insert("s", row)
    return db


_small_int = st.one_of(st.none(), st.integers(0, 4))
_small_str = st.one_of(st.none(), st.sampled_from(["x", "y", "z"]))

_r_rows = st.lists(st.tuples(_small_int, _small_int, _small_str), max_size=12)
_s_rows = st.lists(st.tuples(_small_int, _small_str), max_size=8)

# WHERE fragments over r (single table)
_single_preds = st.sampled_from(
    [
        None,
        "r.a = 1",
        "r.a <> 2",
        "r.a < r.b",
        "r.a IS NULL",
        "r.a IS NOT NULL",
        "r.b BETWEEN 1 AND 3",
        "r.c IN ('x', 'y')",
        "r.c LIKE 'x%'",
        "r.a = 1 OR r.b = 2",
        "NOT r.a = 1",
        "r.a + r.b > 3",
        "r.a = 1 AND r.c = 'x'",
    ]
)

_join_preds = st.sampled_from(
    [
        "r.a = s.a",
        "r.a = s.a AND s.d = 'x'",
        "r.b = s.a AND r.c = 'y'",
        "r.a = s.a AND r.b IS NOT NULL",
    ]
)


class TestSingleTable:
    @settings(max_examples=120, deadline=None)
    @given(rows=_r_rows, predicate=_single_preds, distinct=st.booleans())
    def test_select_matches_oracle(self, rows, predicate, distinct):
        db = build_db(rows, [])
        where = f" WHERE {predicate}" if predicate else ""
        keyword = "DISTINCT " if distinct else ""
        sql = f"SELECT {keyword}r.a, r.c FROM r{where}"
        got = ConventionalEngine(db).execute(sql).rows
        want = reference_execute(db, sql)
        assert Counter(got) == Counter(want)

    @settings(max_examples=80, deadline=None)
    @given(rows=_r_rows, predicate=_single_preds)
    def test_aggregates_match_oracle(self, rows, predicate):
        db = build_db(rows, [])
        where = f" WHERE {predicate}" if predicate else ""
        sql = (
            "SELECT COUNT(*), COUNT(r.a), COUNT(DISTINCT r.a), SUM(r.b), "
            f"MIN(r.b), MAX(r.b) FROM r{where}"
        )
        got = ConventionalEngine(db).execute(sql).rows
        want = reference_execute(db, sql)
        assert got == want

    @settings(max_examples=80, deadline=None)
    @given(rows=_r_rows)
    def test_group_by_matches_oracle(self, rows):
        db = build_db(rows, [])
        sql = "SELECT r.c, COUNT(*), SUM(r.a) FROM r GROUP BY r.c"
        got = ConventionalEngine(db).execute(sql).rows
        want = reference_execute(db, sql)
        assert Counter(got) == Counter(want)

    @settings(max_examples=60, deadline=None)
    @given(rows=_r_rows)
    def test_having_matches_oracle(self, rows):
        db = build_db(rows, [])
        sql = "SELECT r.c, COUNT(*) FROM r GROUP BY r.c HAVING COUNT(*) > 1"
        got = ConventionalEngine(db).execute(sql).rows
        want = reference_execute(db, sql)
        assert Counter(got) == Counter(want)


class TestJoins:
    @settings(max_examples=120, deadline=None)
    @given(
        r_rows=_r_rows,
        s_rows=_s_rows,
        predicate=_join_preds,
        distinct=st.booleans(),
    )
    def test_join_matches_oracle(self, r_rows, s_rows, predicate, distinct):
        db = build_db(r_rows, s_rows)
        keyword = "DISTINCT " if distinct else ""
        sql = f"SELECT {keyword}r.b, s.d FROM r, s WHERE {predicate}"
        got = ConventionalEngine(db).execute(sql).rows
        want = reference_execute(db, sql)
        assert Counter(got) == Counter(want)

    @settings(max_examples=60, deadline=None)
    @given(r_rows=_r_rows, s_rows=_s_rows)
    def test_join_aggregate_matches_oracle(self, r_rows, s_rows):
        db = build_db(r_rows, s_rows)
        sql = (
            "SELECT s.d, COUNT(*) FROM r, s WHERE r.a = s.a GROUP BY s.d"
        )
        got = ConventionalEngine(db).execute(sql).rows
        want = reference_execute(db, sql)
        assert Counter(got) == Counter(want)

    @settings(max_examples=60, deadline=None)
    @given(r_rows=_r_rows, s_rows=_s_rows)
    def test_cross_product_count(self, r_rows, s_rows):
        db = build_db(r_rows, s_rows)
        sql = "SELECT r.a, s.a FROM r, s"
        got = ConventionalEngine(db).execute(sql).rows
        assert len(got) == len(r_rows) * len(s_rows)
