"""The serving layer's caching contract.

Covers the three caches (parse, coverage-decision, result) and their
maintenance-aware invalidation: prepared queries are re-checked after
``register``/``unregister``; result entries for a table are evicted
after ``insert``/``delete`` on *that* table but retained for untouched
tables; the LRU obeys its entry and byte budgets in recency order.
"""

from __future__ import annotations

import pytest

from repro import BEAS, AccessConstraint
from repro.beas.result import ExecutionMode
from repro.errors import (
    BudgetExceededError,
    ServingError,
    UnknownParameterError,
)
from repro.serving import BEASServer, LRUCache
from repro.sql.fingerprint import statement_fingerprint

from tests.conftest import EXAMPLE2_SQL

CALL_SQL = (
    "SELECT DISTINCT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)
PACKAGE_SQL = "SELECT pid FROM package WHERE pnum = '100' AND year = 2016"

NEW_CALL = (900, "100", "990", "2016-06-01", "lagoon")


@pytest.fixture
def server(ex1_beas) -> BEASServer:
    return ex1_beas.serve()


# --------------------------------------------------------------------------- #
# the LRU primitive
# --------------------------------------------------------------------------- #
class TestLRUCache:
    def test_entry_budget_evicts_least_recently_used(self):
        cache = LRUCache("t", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a': now 'b' is LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_enforced(self):
        cache = LRUCache("t", max_entries=100, max_bytes=100, sizeof=lambda v: v)
        cache.put("a", 40)
        cache.put("b", 40)
        cache.put("c", 40)  # 120 > 100: 'a' must go
        assert "a" not in cache
        assert cache.current_bytes == 80
        assert cache.stats.evictions == 1

    def test_oversized_value_refused_not_cached(self):
        cache = LRUCache("t", max_entries=4, max_bytes=100, sizeof=lambda v: v)
        cache.put("small", 10)
        assert not cache.put("big", 1000)
        assert "big" not in cache and "small" in cache

    def test_invalidations_counted_separately_from_evictions(self):
        cache = LRUCache("t", max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a")
        assert cache.invalidate_where(lambda k, v: v == 2) == 1
        assert cache.stats.invalidations == 2
        assert cache.stats.evictions == 0


# --------------------------------------------------------------------------- #
# result cache: per-table granularity
# --------------------------------------------------------------------------- #
class TestResultCacheInvalidation:
    def test_repeat_is_served_from_cache(self, server):
        """Admission is admit-on-second-hit: the first sighting only
        registers the key, the second caches, the third is a hit."""
        cold = server.execute(CALL_SQL)
        admitted = server.execute(CALL_SQL)
        warm = server.execute(CALL_SQL)
        assert not cold.metrics.served_from_cache
        assert not admitted.metrics.served_from_cache
        assert warm.metrics.served_from_cache
        assert warm.rows == cold.rows and warm.columns == cold.columns
        assert warm.mode is cold.mode
        # the cache-hit path must report its real serve latency (the
        # router's cost-aware admission trains on it), never 0.0
        assert warm.metrics.seconds > 0

    def test_insert_evicts_only_the_touched_table(self, server):
        for _ in range(2):  # second sighting admits each entry
            server.execute(CALL_SQL)
            server.execute(PACKAGE_SQL)
        server.insert("call", [NEW_CALL])
        after_call = server.execute(CALL_SQL)
        after_package = server.execute(PACKAGE_SQL)
        assert not after_call.metrics.served_from_cache
        assert ("990", "lagoon") in after_call.rows
        assert after_package.metrics.served_from_cache
        assert server.stats().result.invalidations == 1

    def test_delete_evicts_only_the_touched_table(self, server):
        before = server.execute(CALL_SQL)
        server.execute(CALL_SQL)
        server.execute(PACKAGE_SQL)
        server.execute(PACKAGE_SQL)
        victim = (1, "100", "555", "2016-06-01", "north")
        server.delete("call", [victim])
        after = server.execute(CALL_SQL)
        assert not after.metrics.served_from_cache
        assert set(after.rows) <= set(before.rows)
        assert server.execute(PACKAGE_SQL).metrics.served_from_cache

    def test_join_result_depends_on_every_joined_table(self, server):
        server.execute(EXAMPLE2_SQL)
        server.execute(EXAMPLE2_SQL)
        assert server.execute(EXAMPLE2_SQL).metrics.served_from_cache
        server.insert("package", [(90, "104", "c9", "2016-01-01", "2016-12-31", 2016)])
        assert not server.execute(EXAMPLE2_SQL).metrics.served_from_cache

    def test_mutation_outside_the_server_is_still_seen(self, server):
        """Table.version bumps on any mutation path, not just server.insert."""
        server.execute(CALL_SQL)
        server.execute(CALL_SQL)  # admitted
        server.beas.insert("call", [NEW_CALL])  # around the serving layer
        result = server.execute(CALL_SQL)
        assert not result.metrics.served_from_cache
        assert ("990", "lagoon") in result.rows

    def test_cached_rows_are_isolated_from_caller_mutation(self, server):
        server.execute(CALL_SQL)
        admitted = server.execute(CALL_SQL)
        admitted.rows.append(("corrupted", "row"))
        cached = server.execute(CALL_SQL)
        assert cached.metrics.served_from_cache
        assert ("corrupted", "row") not in cached.rows
        cached.rows.append(("corrupted", "row"))
        assert ("corrupted", "row") not in server.execute(CALL_SQL).rows


# --------------------------------------------------------------------------- #
# decision cache: access-schema generation
# --------------------------------------------------------------------------- #
class TestDecisionInvalidation:
    def test_unregister_forces_recheck(self, server):
        prepared = server.prepare(CALL_SQL)
        assert prepared.check().covered
        server.unregister("psi1")
        decision = prepared.check()
        assert not decision.covered
        result = prepared.execute()
        assert result.mode is not ExecutionMode.BOUNDED

    def test_register_forces_recheck(self, ex1_db):
        beas = BEAS(ex1_db)  # empty access schema
        server = beas.serve()
        prepared = server.prepare(CALL_SQL)
        assert not prepared.check().covered
        server.register(
            AccessConstraint("call", ["pnum", "date"], ["recnum", "region"], 500,
                             name="psi1")
        )
        decision = prepared.check()
        assert decision.covered
        assert prepared.execute().mode is ExecutionMode.BOUNDED

    def test_schema_change_flushes_results_too(self, server):
        server.execute(CALL_SQL)
        server.unregister("psi2")  # unrelated constraint, same generation clock
        assert not server.execute(CALL_SQL).metrics.served_from_cache

    def test_decision_cache_hit_skips_checker(self, server):
        server.execute(CALL_SQL)
        server.execute(CALL_SQL, use_result_cache=False)
        stats = server.stats()
        assert stats.decision.hits >= 1

    def test_drift_monitor_apply_bumps_generation(self, server):
        """The monitor's bound adjustments must invalidate pinned
        decisions just like MaintenanceManager's ADJUST path does."""
        from repro.maintenance.monitor import DriftMonitor

        stale = server.check(CALL_SQL)  # pins access_bound = 500 (psi1's N)
        changed = DriftMonitor(server.beas.catalog).apply()
        assert "psi1" in changed  # declared 500 vs tiny observed max
        fresh = server.check(CALL_SQL)
        assert fresh.covered
        assert fresh.access_bound < stale.access_bound

    def test_adjusted_bound_bumps_generation(self, server):
        generation = server.stats().schema_generation
        rows = [
            (800 + i, "100", f"r{i}", "2016-07-01", "east") for i in range(3)
        ]
        server.insert("call", rows, adjust_bounds=True)
        # REJECT would have accepted this batch too, so no adjustment is
        # guaranteed; widen psi2 instead (12 packages for one (pnum, year))
        pkgs = [
            (200 + i, "105", f"c{i}", "2016-01-01", "2016-12-31", 2016)
            for i in range(13)
        ]
        server.insert("package", pkgs, adjust_bounds=True)
        assert server.stats().schema_generation > generation


# --------------------------------------------------------------------------- #
# prepared queries and parameter slots
# --------------------------------------------------------------------------- #
class TestPreparedQueries:
    def test_slots_extracted(self, server):
        prepared = server.prepare(EXAMPLE2_SQL)
        assert "call.date" in prepared.slots
        assert "business.type" in prepared.slots
        # range predicates are not slots
        assert all("start" not in name for name in prepared.slots)

    def test_binding_changes_the_answer(self, server, ex1_beas):
        prepared = server.prepare(CALL_SQL)
        default = prepared.execute()
        rebound = prepared.execute({"call.date": "2016-06-02"})
        fresh = ex1_beas.execute(
            CALL_SQL.replace("2016-06-01", "2016-06-02")
        )
        assert set(rebound.rows) == set(fresh.rows)
        assert set(rebound.rows) != set(default.rows)

    def test_unqualified_and_in_list_bindings(self, server):
        prepared = server.prepare(CALL_SQL)
        rebound = prepared.execute({"pnum": ["100", "101"]})
        expected = server.beas.execute(
            "SELECT DISTINCT recnum, region FROM call "
            "WHERE pnum IN ('100', '101') AND date = '2016-06-01'"
        )
        assert set(rebound.rows) == set(expected.rows)

    def test_rebound_execution_is_cached_per_binding(self, server):
        prepared = server.prepare(CALL_SQL)
        prepared.execute({"call.date": "2016-06-02"})
        prepared.execute({"call.date": "2016-06-02"})  # admitted
        again = prepared.execute({"call.date": "2016-06-02"})
        assert again.metrics.served_from_cache

    def test_unknown_parameter_rejected(self, server):
        prepared = server.prepare(CALL_SQL)
        with pytest.raises(UnknownParameterError):
            prepared.execute({"call.nosuch": "x"})

    def test_null_parameter_rejected(self, server):
        prepared = server.prepare(CALL_SQL)
        with pytest.raises(ServingError):
            prepared.execute({"call.date": None})

    def test_prepare_same_text_returns_same_handle(self, server):
        first = server.prepare(CALL_SQL, name="q")
        second = server.prepare(CALL_SQL)
        assert first is second
        assert server.prepared("q") is first

    def test_prepare_name_conflict_rejected(self, server):
        server.prepare(CALL_SQL, name="q")
        with pytest.raises(ServingError):
            server.prepare(PACKAGE_SQL, name="q")

    def test_fingerprint_ignores_presentation_order(self, server):
        reordered = (
            "select distinct recnum, region from call "
            "where date = '2016-06-01' and pnum = '100'"
        )
        server.execute(CALL_SQL)
        server.execute(CALL_SQL)  # admitted
        assert server.execute(reordered).metrics.served_from_cache
        assert statement_fingerprint(CALL_SQL) == statement_fingerprint(reordered)


# --------------------------------------------------------------------------- #
# budgets and modes through the serving layer
# --------------------------------------------------------------------------- #
class TestServingBudgets:
    def test_budget_exceeded_raises_and_is_not_cached(self, server):
        with pytest.raises(BudgetExceededError):
            server.execute(CALL_SQL, budget=1)
        ok = server.execute(CALL_SQL, budget=10_000)
        assert ok.mode is ExecutionMode.BOUNDED
        assert ok.decision.within_budget

    def test_approximate_results_are_not_cached(self, server):
        first = server.execute(CALL_SQL, budget=1, approximate_over_budget=True)
        second = server.execute(CALL_SQL, budget=1, approximate_over_budget=True)
        assert first.mode is ExecutionMode.APPROXIMATE
        assert second.mode is ExecutionMode.APPROXIMATE
        assert not second.metrics.served_from_cache

    def test_execute_decided_budgets_an_unbudgeted_decision(self, ex1_beas):
        """A pinned decision carries within_budget=None; passing a budget
        to execute_decided must derive feasibility from the access bound,
        not treat None as over-budget."""
        decision = ex1_beas.check(CALL_SQL)
        assert decision.covered and decision.within_budget is None
        ok = ex1_beas.execute_decided(CALL_SQL, decision, budget=10_000)
        assert ok.mode is ExecutionMode.BOUNDED
        with pytest.raises(BudgetExceededError):
            ex1_beas.execute_decided(CALL_SQL, decision, budget=1)

    def test_metrics_expose_cache_counters(self, server):
        server.execute(CALL_SQL)
        server.execute(CALL_SQL)  # admitted on the second sighting
        warm = server.execute(CALL_SQL)
        assert warm.metrics.cache_hits >= 2  # parse + result
        assert warm.metrics.cache_misses == 0
        assert warm.metrics.table_versions  # the observed snapshot vector
        stats = server.stats()
        assert stats.executions == 3
        assert stats.result.hits == 1
        assert stats.admission_declines == 1

    def test_stats_describe_mentions_every_cache(self, server):
        server.execute(CALL_SQL)
        text = server.stats().describe()
        for label in ("parse:", "decision:", "result:", "prepared queries"):
            assert label in text
