"""The asyncio front end (``AsyncBEASServer``).

Covers: concurrent clients multiplexing onto the bounded pool, the
per-table maintenance queues (FIFO per table, parallel across tables,
batched draining), error relay for rejected batches, admission control
accounting, and clean shutdown.
"""

from __future__ import annotations

import asyncio
from collections import Counter

import pytest

from repro import BEAS
from repro.errors import MaintenanceError, ServingError
from repro.serving import AsyncBEASServer

from tests.conftest import example1_access_schema, example1_database

CALL_SQL = (
    "SELECT DISTINCT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)
PACKAGE_SQL = "SELECT pid FROM package WHERE pnum = '100' AND year = 2016"


def run(coro):
    return asyncio.run(coro)


def make_beas() -> BEAS:
    return BEAS(example1_database(), example1_access_schema())


# --------------------------------------------------------------------------- #
def test_gathered_clients_share_the_caches():
    # parallelism pinned to 1: with an engine pool the 12 clients overlap
    # for real, so how many of them race past the second-hit admission
    # before the first answer lands becomes timing-dependent
    beas = BEAS(
        example1_database(), example1_access_schema(), parallelism=1
    )

    async def scenario():
        async with beas.serve_async(max_workers=4) as aserver:
            results = await asyncio.gather(
                *(aserver.execute(CALL_SQL) for _ in range(12))
            )
            stats = await aserver.stats()
            return results, stats

    results, stats = run(scenario())
    expected = Counter(results[0].rows)
    assert all(Counter(r.rows) == expected for r in results)
    assert stats.serving.executions == 12
    assert sum(1 for r in results if r.metrics.served_from_cache) >= 9
    assert stats.workers == 4
    assert stats.peak_in_flight >= 1


def test_prepare_and_execute_prepared():
    async def scenario():
        async with make_beas().serve_async() as aserver:
            prepared = await aserver.prepare(CALL_SQL, name="q")
            first = await aserver.execute_prepared("q")
            rebound = await aserver.execute_prepared(
                prepared, {"call.date": "2016-06-02"}
            )
            decision = await aserver.check(CALL_SQL)
            return first, rebound, decision

    first, rebound, decision = run(scenario())
    assert first.rows and decision.covered
    assert set(rebound.rows) != set(first.rows)


def test_maintenance_queue_preserves_per_table_fifo_order():
    async def scenario():
        beas = make_beas()
        async with AsyncBEASServer(beas.serve(), max_workers=2) as aserver:
            row = (7_000, "100", "fifo", "2016-06-01", "bay")
            batches = await asyncio.gather(
                aserver.insert("call", [row]),
                aserver.delete("call", [row]),
                aserver.insert("call", [row]),
                aserver.insert("package", [
                    (7_001, "104", "c9", "2016-01-01", "2016-12-31", 2016)
                ]),
            )
            stats = await aserver.stats()
            return beas, batches, stats

    beas, batches, stats = run(scenario())
    # FIFO per table: insert -> delete -> insert nets exactly one copy
    calls = [r for r in beas.database.table("call").rows if r[2] == "fifo"]
    assert len(calls) == 1
    assert [b.table for b in batches] == ["call", "call", "call", "package"]
    assert [b.table_version for b in batches[:3]] == sorted(
        b.table_version for b in batches[:3]
    )
    assert stats.drained_jobs == 4
    assert stats.drained_batches <= 4  # pending jobs coalesce into passes


def test_rejected_batch_raises_for_its_caller_only():
    async def scenario():
        async with make_beas().serve_async() as aserver:
            violating = [
                (300 + i, "100", f"c{i}", "2016-01-01", "2016-12-31", 2016)
                for i in range(13)  # psi2 allows 12 per (pnum, year)
            ]
            ok_row = [(7_100, "104", "c5", "2016-01-01", "2016-12-31", 2016)]
            outcomes = await asyncio.gather(
                aserver.insert("package", violating),
                aserver.insert("package", ok_row),
                return_exceptions=True,
            )
            follow_up = await aserver.execute(PACKAGE_SQL)
            return outcomes, follow_up

    outcomes, follow_up = run(scenario())
    assert isinstance(outcomes[0], MaintenanceError)
    assert not isinstance(outcomes[1], Exception)
    assert outcomes[1].inserted == 1
    assert follow_up.rows  # the server is still healthy


def test_interleaved_queries_and_maintenance_stay_fresh():
    async def scenario():
        async with make_beas().serve_async(max_workers=3) as aserver:
            await aserver.execute(CALL_SQL)
            await aserver.execute(CALL_SQL)  # admitted

            async def client(i: int):
                return await aserver.execute(CALL_SQL)

            inserted = aserver.insert(
                "call", [(7_200, "100", "async", "2016-06-01", "reef")]
            )
            answers, batch = await asyncio.gather(
                asyncio.gather(*(client(i) for i in range(8))), inserted
            )
            final = await aserver.execute(CALL_SQL)
            return answers, batch, final

    answers, batch, final = run(scenario())
    assert batch.inserted == 1
    assert ("async", "reef") in final.rows
    new_version = batch.table_version
    for result in answers:  # snapshots are pre- or post-batch, never torn
        version = result.metrics.table_versions["call"]
        has_row = ("async", "reef") in result.rows
        assert has_row == (version >= new_version)


def test_closed_server_refuses_work():
    async def scenario():
        aserver = make_beas().serve_async()
        await aserver.aclose()
        with pytest.raises(ServingError):
            await aserver.execute(CALL_SQL)
        with pytest.raises(ServingError):
            await aserver.insert("call", [])

    run(scenario())


def test_queries_parked_on_admission_fail_cleanly_at_close():
    """Tasks queued behind the admission semaphore when aclose() runs get
    the documented ServingError, not the pool's raw RuntimeError."""

    async def scenario():
        aserver = make_beas().serve_async(max_workers=2, admission_limit=2)
        tasks = [
            asyncio.create_task(aserver.execute(CALL_SQL)) for _ in range(12)
        ]
        await asyncio.sleep(0)  # let them reach the semaphore
        await aserver.aclose()
        return await asyncio.gather(*tasks, return_exceptions=True)

    outcomes = run(scenario())
    for outcome in outcomes:
        assert not isinstance(outcome, RuntimeError), outcome
        assert isinstance(outcome, (ServingError,)) or hasattr(
            outcome, "rows"
        ), outcome


def test_stats_describe_mentions_front_end_and_shards():
    async def scenario():
        async with make_beas().serve_async(max_workers=2) as aserver:
            await aserver.execute(CALL_SQL)
            await aserver.insert(
                "call", [(7_300, "100", "desc", "2016-06-01", "cape")]
            )
            return await aserver.stats()

    stats = run(scenario())
    text = stats.describe()
    for label in ("async front end:", "workers:", "maintenance queues:",
                  "serving stats:", "shard call:"):
        assert label in text
