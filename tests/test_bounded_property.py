"""The paper's central invariant, property-tested:

    For every database D that conforms to the access schema A and every
    query Q covered by A:   Q(D_Q) = Q(D)

Random databases + a family of covered queries; the bounded executor's
answers must equal the conventional engine's (as sets — and as bags when
the plan is bag-exact).
"""

from collections import Counter

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    AccessConstraint,
    AccessSchema,
    ASCatalog,
    BoundedEvaluabilityChecker,
    BoundedPlanExecutor,
    ConventionalEngine,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)

# --------------------------------------------------------------------------- #
# a small two-relation world: orders(oid*, cust, day, item, qty), users(cust*, city, tier)
# --------------------------------------------------------------------------- #


def world_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            TableSchema(
                "orders",
                [
                    ("oid", DataType.INT),
                    ("cust", DataType.STRING),
                    ("day", DataType.STRING),
                    ("item", DataType.STRING),
                    ("qty", DataType.INT),
                ],
                keys=[("oid",)],
            ),
            TableSchema(
                "users",
                [
                    ("cust", DataType.STRING),
                    ("city", DataType.STRING),
                    ("tier", DataType.STRING),
                ],
                keys=[("cust",)],
            ),
        ]
    )


def world_access() -> AccessSchema:
    return AccessSchema(
        [
            # every (cust, day) places boundedly many orders; key exposed
            AccessConstraint(
                "orders", ["cust", "day"], ["oid", "item", "qty"], 50,
                name="by_cust_day",
            ),
            # users keyed by cust
            AccessConstraint(
                "users", ["cust"], ["city", "tier"], 1, name="user_row"
            ),
            # boundedly many users per (city, tier)
            AccessConstraint(
                "users", ["city", "tier"], ["cust"], 50, name="by_city_tier"
            ),
        ]
    )


_custs = st.sampled_from(["c1", "c2", "c3"])
_days = st.sampled_from(["d1", "d2"])
_items = st.sampled_from(["pen", "ink", "pad"])
_cities = st.sampled_from(["rome", "oslo"])
_tiers = st.sampled_from(["gold", "blue"])

_orders = st.lists(
    st.tuples(_custs, _days, _items, st.one_of(st.none(), st.integers(0, 9))),
    max_size=25,
)
_users = st.dictionaries(_custs, st.tuples(_cities, _tiers), max_size=3)


def build_world(orders, users) -> Database:
    db = Database(world_schema())
    for oid, (cust, day, item, qty) in enumerate(orders):
        db.insert("orders", (oid, cust, day, item, qty))
    for cust, (city, tier) in users.items():
        db.insert("users", (cust, city, tier))
    return db


QUERIES = [
    # single fetch, distinct
    "SELECT DISTINCT item FROM orders WHERE cust = 'c1' AND day = 'd1'",
    # single fetch with residual filter
    "SELECT DISTINCT item, qty FROM orders WHERE cust = 'c1' AND day = 'd1' AND qty > 2",
    # plain select (set semantics unless bag-exact; here key exposed => bag)
    "SELECT item FROM orders WHERE cust = 'c2' AND day = 'd2'",
    # join seeded from users by (city, tier)
    """SELECT DISTINCT o.item FROM orders o, users u
       WHERE u.city = 'rome' AND u.tier = 'gold' AND u.cust = o.cust
         AND o.day = 'd1'""",
    # join seeded from orders constants, user lookup by key
    """SELECT DISTINCT u.city FROM orders o, users u
       WHERE o.cust = 'c1' AND o.day = 'd1' AND o.cust = u.cust""",
    # IN-list keys
    "SELECT DISTINCT item FROM orders WHERE cust IN ('c1', 'c3') AND day = 'd1'",
    # duplicate-sensitive aggregate (bag-exact: oid exposed)
    "SELECT COUNT(*) FROM orders WHERE cust = 'c1' AND day = 'd1'",
    # group-by aggregate
    """SELECT item, COUNT(*) AS n, SUM(qty) FROM orders
       WHERE cust = 'c1' AND day = 'd1' GROUP BY item""",
    # aggregate over a join
    """SELECT COUNT(DISTINCT o.item) FROM orders o, users u
       WHERE u.city = 'rome' AND u.tier = 'gold' AND u.cust = o.cust
         AND o.day = 'd2'""",
    # set operation
    """SELECT DISTINCT item FROM orders WHERE cust = 'c1' AND day = 'd1'
       UNION
       SELECT DISTINCT item FROM orders WHERE cust = 'c2' AND day = 'd1'""",
]


class TestBoundedEqualsConventional:
    @settings(max_examples=120, deadline=None)
    @given(orders=_orders, users=_users, query_index=st.integers(0, len(QUERIES) - 1))
    def test_q_of_dq_equals_q_of_d(self, orders, users, query_index):
        db = build_world(orders, users)
        access = world_access()
        catalog = ASCatalog(db, access)
        checker = BoundedEvaluabilityChecker(db.schema, access)
        sql = QUERIES[query_index]

        decision = checker.check(sql)
        assert decision.covered, decision.reasons

        bounded = BoundedPlanExecutor(catalog).execute(decision.plan)
        host = ConventionalEngine(db).execute(sql)

        if decision.bag_exact:
            assert Counter(bounded.rows) == Counter(host.rows)
        else:
            assert set(bounded.rows) == set(host.rows)
        # the runtime never exceeds the deduced bound
        assert bounded.metrics.tuples_fetched <= decision.access_bound
        # and never touches base tables
        assert bounded.metrics.tuples_scanned == 0

    @settings(max_examples=60, deadline=None)
    @given(orders=_orders, users=_users)
    def test_dedup_keys_equivalent(self, orders, users):
        db = build_world(orders, users)
        access = world_access()
        catalog = ASCatalog(db, access)
        checker = BoundedEvaluabilityChecker(db.schema, access)
        sql = QUERIES[3]
        decision = checker.check(sql)
        plain = BoundedPlanExecutor(catalog, dedup_keys=False).execute(decision.plan)
        dedup = BoundedPlanExecutor(catalog, dedup_keys=True).execute(decision.plan)
        assert set(plain.rows) == set(dedup.rows)
        assert dedup.metrics.tuples_fetched <= plain.metrics.tuples_fetched

    @settings(max_examples=60, deadline=None)
    @given(orders=_orders, users=_users)
    def test_incremental_maintenance_preserves_invariant(self, orders, users):
        """Insert rows through the maintenance manager, then re-check
        Q(D_Q) = Q(D) on the updated database."""
        from repro.maintenance import MaintenanceManager

        assume(len(orders) >= 2)
        split = len(orders) // 2
        db = build_world(orders[:split], users)
        access = world_access()
        catalog = ASCatalog(db, access)
        manager = MaintenanceManager(catalog)
        new_rows = [
            (1000 + i, cust, day, item, qty)
            for i, (cust, day, item, qty) in enumerate(orders[split:])
        ]
        manager.insert("orders", new_rows)

        checker = BoundedEvaluabilityChecker(db.schema, access)
        sql = QUERIES[0]
        decision = checker.check(sql)
        bounded = BoundedPlanExecutor(catalog).execute(decision.plan)
        host = ConventionalEngine(db).execute(sql)
        assert set(bounded.rows) == set(host.rows)
