"""Cross-cutting integration tests: BEAS facade updates, TLC export + CLI,
discovery batch fallback on multi-relation workloads."""

import pytest

from repro import BEAS, ExecutionMode
from repro.cli import main
from repro.discovery import discover
from repro.errors import MaintenanceError
from repro.workloads.tlc import export_tlc, generate_tlc, tlc_access_schema

from tests.conftest import EXAMPLE2_SQL, example1_access_schema, example1_database


class TestBeasUpdates:
    def test_insert_keeps_bounded_answers_fresh(self, ex1_beas):
        sql = (
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        before = ex1_beas.execute(sql)
        ex1_beas.insert("call", [(99, "100", "999", "2016-06-01", "east")])
        after = ex1_beas.execute(sql)
        assert after.metrics.tuples_scanned == 0
        assert after.to_set() == before.to_set() | {("999",)}

    def test_delete_keeps_bounded_answers_fresh(self, ex1_beas):
        ex1_beas.delete("call", [(1, "100", "555", "2016-06-01", "north")])
        sql = (
            "SELECT DISTINCT recnum, region FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        result = ex1_beas.execute(sql)
        # call_id 7 still supports (555, north)
        assert ("555", "north") in result.to_set()
        ex1_beas.delete("call", [(7, "100", "555", "2016-06-01", "north")])
        result = ex1_beas.execute(sql)
        assert ("555", "north") not in result.to_set()

    def test_violating_insert_rejected(self, ex1_beas):
        rows = [
            (200 + i, "300", f"p{i}", "2016-01-01", "2016-12-31", 2016)
            for i in range(13)
        ]
        with pytest.raises(MaintenanceError):
            ex1_beas.insert("package", rows)

    def test_violating_insert_adjusts_when_asked(self, ex1_beas):
        rows = [
            (200 + i, "300", f"p{i}", "2016-01-01", "2016-12-31", 2016)
            for i in range(13)
        ]
        batch = ex1_beas.insert("package", rows, adjust_bounds=True)
        assert "psi2" in batch.adjusted_constraints
        # plans must pick up the widened bound
        decision = ex1_beas.check(
            "SELECT DISTINCT pid FROM package WHERE pnum = '300' AND year = 2016"
        )
        assert decision.covered and decision.access_bound == 13

    def test_host_statistics_invalidated(self, ex1_beas):
        host = ex1_beas.host_engine()
        before = host.statistics()["call"].row_count
        ex1_beas.insert("call", [(98, "101", "888", "2016-06-02", "west")])
        assert host.statistics()["call"].row_count == before + 1


class TestTlcExportAndCli:
    def test_export_then_query_via_cli(self, tmp_path, capsys):
        ds = generate_tlc(scale=1)
        target = export_tlc(ds, tmp_path / "tlc")
        assert (target / "call.csv").exists()
        assert (target / "access_schema.json").exists()
        assert (target / "PARAMS.txt").exists()

        code = main(
            [
                "run",
                "--data", str(target),
                "--schema", str(target / "access_schema.json"),
                "--sql",
                f"SELECT DISTINCT pnum FROM business "
                f"WHERE type = '{ds.params.t0}' AND region = '{ds.params.r0}'",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert ds.params.p0 in captured.out
        assert "bounded" in captured.err

    def test_exported_tables_round_trip(self, tmp_path):
        from repro.storage.csvio import load_csv

        ds = generate_tlc(scale=1)
        target = export_tlc(ds, tmp_path / "tlc")
        back = load_csv(target / "business.csv", table_name="business")
        assert back.rows == ds.database.table("business").rows


class TestDiscoveryBatchFallback:
    def test_single_multi_relation_query_workload(self):
        """A workload of one 3-way-join query: no single constraint helps,
        the batch step must still discover a covering schema."""
        db = example1_database()
        result = discover(db, [EXAMPLE2_SQL], slack=100.0)
        assert result.covered_queries == {0}
        # and the result is minimal-ish: pruning removed redundant picks
        assert len(result.selected) <= 4

    def test_batch_respects_budget(self):
        db = example1_database()
        unlimited = discover(db, [EXAMPLE2_SQL], slack=100.0)
        result = discover(
            db, [EXAMPLE2_SQL], slack=100.0,
            storage_budget=unlimited.storage_used // 4,
        )
        assert result.covered_queries == set()
        assert result.storage_used <= unlimited.storage_used // 4

    def test_discovered_schema_executes_correctly(self):
        db = example1_database()
        result = discover(db, [EXAMPLE2_SQL], slack=100.0)
        beas = BEAS(db, result.schema)
        mine = beas.execute(EXAMPLE2_SQL)
        assert mine.mode is ExecutionMode.BOUNDED
        host = beas.host_engine().execute(EXAMPLE2_SQL)
        assert mine.to_set() == set(host.rows)
