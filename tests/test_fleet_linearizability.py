"""Cross-wire linearizability: fleet serves ≡ oracle at observed versions.

``tests/test_serving_threads.py``'s serial-replay check, ported to a
1-coordinator / 3-replica fleet. Writer threads (one per table) and
reader threads hammer one sharded server whose covered bounded reads are
dispatched to socket-connected replicas; mid-run, one replica is killed
with the ``die_on_next_task`` chaos hook. The history is accepted iff:

* every observed table-version vector is one an actual write produced,
  placed consistently in real time, and per-reader monotone (the
  original suite's conditions);
* **every served answer equals the oracle at its observed version
  vector** — exact row order and exact ``tuples_fetched`` against a
  fresh ``replicas=1`` engine replaying the write log up to that
  vector, whether the answer came over the wire or from the
  coordinator's failover fallback;
* the injected kill shows up as a failover (never a wrong or missing
  answer), and the final state equals a serial replay.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from repro import BEAS

from tests.conftest import example1_access_schema, example1_database

PORT_BASE = 8400
REPLICAS = 3
WRITERS = {"call": 0, "package": 1, "business": 2}
READERS = 4
WRITES_PER_THREAD = 10
READS_PER_THREAD = 24
KILL_AFTER_READS = 20  # one replica dies roughly mid-run

QUERIES = {
    "call": (
        "SELECT recnum, region FROM call "
        "WHERE pnum = '100' AND date = '2016-06-01'"
    ),
    "package": "SELECT pid FROM package WHERE pnum = '100' AND year = 2016",
    "business": (
        "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east'"
    ),
}

DEPENDENCIES = {"call": ("call",), "package": ("package",), "business": ("business",)}


def _write_rows(table: str, thread: int, op: int) -> list[tuple]:
    """Commutative, key-unique rows for one write batch (the serial
    replay and the per-version oracles replay these deterministically)."""
    base = 50_000 + thread * 1_000 + op
    if table == "call":
        return [(base, "100", f"w{thread}-{op}", "2016-06-01", "storm")]
    if table == "package":
        return [
            (base, f"55{thread}{op:02d}", f"p{thread}-{op}",
             "2016-02-01", "2016-11-30", 2016)
        ]
    return [(f"9{thread}{op:02d}", "shop", "harbor")]


class _WriterLog:
    """Per-table write history: version -> (rows, start, end) per batch."""

    def __init__(self, initial_version: int):
        self.initial_version = initial_version
        self.batches: dict[int, tuple[list, float, float]] = {}

    def versions(self) -> set[int]:
        return {self.initial_version} | set(self.batches)

    def min_version_visible_at(self, instant: float) -> int:
        done = [v for v, (_, _, end) in self.batches.items() if end < instant]
        return max(done, default=self.initial_version)

    def max_version_started_by(self, instant: float) -> int:
        started = [
            v for v, (_, start, _) in self.batches.items() if start < instant
        ]
        return max(started, default=self.initial_version)

    def rows_through(self, version: int) -> list[tuple[int, list]]:
        """The (version, rows) batches a prefix up to ``version`` holds."""
        return sorted(
            (v, rows) for v, (rows, _, _) in self.batches.items()
            if v <= version
        )


class _Oracle:
    """Memoised ``replicas=1`` replays: one engine per distinct observed
    (query, dependency-version-vector) pair."""

    def __init__(self, logs: dict[str, _WriterLog]):
        self._logs = logs
        self._engines: dict[tuple, BEAS] = {}

    def _engine_at(self, vector: tuple) -> BEAS:
        engine = self._engines.get(vector)
        if engine is None:
            engine = BEAS(example1_database(), example1_access_schema())
            for table, version in vector:
                for _, rows in self._logs[table].rows_through(version):
                    engine.insert(table, rows)
            self._engines[vector] = engine
        return engine

    def answer(self, name: str, versions: dict[str, int]):
        vector = tuple(
            (table, versions[table]) for table in DEPENDENCIES[name]
        )
        result = (
            self._engine_at(vector)
            .session()
            .query(QUERIES[name])
            .run(use_result_cache=False)
        )
        return result.rows, result.metrics.tuples_fetched

    def close(self) -> None:
        for engine in self._engines.values():
            engine.close()


def test_fleet_history_is_linearizable_with_replica_kill():
    beas = BEAS(
        example1_database(),
        example1_access_schema(),
        replicas=REPLICAS,
        fleet_port_base=PORT_BASE,
    )
    server = beas.serve()
    logs = {
        table: _WriterLog(server.database.table(table).version)
        for table in WRITERS
    }
    errors: list = []
    observations: list[list] = [[] for _ in range(READERS)]
    reads_done = [0]
    kill_gate = threading.Event()
    barrier = threading.Barrier(len(WRITERS) + READERS + 1)

    # warm in the main thread before any worker starts: the fleet forks
    # its replica processes here, not under a running thread herd, and
    # every template has a routed home + installed snapshot
    prepared = {name: server.prepare(sql) for name, sql in QUERIES.items()}
    victim = None
    for name in QUERIES:
        warm = prepared[name].execute(use_result_cache=False)
        if victim is None and warm.metrics.replica_id >= 0:
            victim = warm.metrics.replica_id
    assert victim is not None, "no template was served by a replica"

    def writer(table: str, index: int) -> None:
        try:
            barrier.wait(timeout=30)
            for op in range(WRITES_PER_THREAD):
                rows = _write_rows(table, index, op)
                start = time.perf_counter()
                batch = server.insert(table, rows)
                end = time.perf_counter()
                logs[table].batches[batch.table_version] = (rows, start, end)
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    def reader(index: int) -> None:
        try:
            barrier.wait(timeout=30)
            names = list(QUERIES)
            for op in range(READS_PER_THREAD):
                name = names[(index + op) % len(names)]
                start = time.perf_counter()
                result = prepared[name].execute(use_result_cache=False)
                end = time.perf_counter()
                observations[index].append(
                    (
                        name,
                        list(result.rows),
                        result.metrics.tuples_fetched,
                        dict(result.metrics.table_versions),
                        result.metrics.replica_id,
                        start,
                        end,
                    )
                )
                reads_done[0] += 1
                if reads_done[0] >= KILL_AFTER_READS:
                    kill_gate.set()
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    def killer() -> None:
        try:
            barrier.wait(timeout=30)
            kill_gate.wait(timeout=60)
            # the replica exits mid-dispatch: the in-flight read must
            # fail over to the coordinator, not hang and not lie
            beas.fleet.debug("die_on_next_task", replica_id=victim)
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    threads = (
        [
            threading.Thread(target=writer, args=(table, index))
            for table, index in WRITERS.items()
        ]
        + [threading.Thread(target=reader, args=(i,)) for i in range(READERS)]
        + [threading.Thread(target=killer)]
    )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors, errors
    assert all(not thread.is_alive() for thread in threads)

    # real-time placement + per-reader monotonicity (the original suite)
    for per_reader in observations:
        last_seen: dict[str, int] = {}
        for _, _, _, versions, _, start, end in per_reader:
            for table, version in versions.items():
                log = logs[table]
                assert version in log.versions(), (table, version)
                assert version >= log.min_version_visible_at(start), (
                    "read missed a write that completed before it started",
                    table, version, start,
                )
                assert version <= log.max_version_started_by(end), (
                    "read observed a write from its future",
                    table, version, end,
                )
                assert version >= last_seen.get(table, 0), (table, version)
                last_seen[table] = version

    # every answer — wire-served or failover-fallback — equals the
    # oracle at its observed version vector: exact order, exact fetches
    oracle = _Oracle(logs)
    try:
        wire_served = 0
        for per_reader in observations:
            for name, rows, fetched, versions, replica_id, _, _ in per_reader:
                expected_rows, expected_fetched = oracle.answer(name, versions)
                assert rows == expected_rows, (name, versions, replica_id)
                assert fetched == expected_fetched, (name, versions, replica_id)
                if replica_id >= 0:
                    wire_served += 1
    finally:
        oracle.close()
    assert wire_served > 0, "no observation was served over the wire"

    # the injected kill surfaced as a failover, never as a wrong answer
    stats = beas.fleet_stats()
    assert stats is not None
    assert stats.failovers >= 1
    assert stats.plans_dispatched > 0

    # final state == serial replay of the same per-thread operations
    replay = BEAS(example1_database(), example1_access_schema()).serve()
    for table, index in WRITERS.items():
        for op in range(WRITES_PER_THREAD):
            replay.insert(table, _write_rows(table, index, op))
    for table in WRITERS:
        live = Counter(server.database.table(table).rows)
        replayed = Counter(replay.database.table(table).rows)
        assert live == replayed, table
    for sql in QUERIES.values():
        concurrent_answer = server.execute(sql, use_result_cache=False)
        serial_answer = replay.execute(sql, use_result_cache=False)
        assert Counter(concurrent_answer.rows) == Counter(serial_answer.rows)
    beas.close()
