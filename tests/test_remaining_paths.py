"""Coverage for remaining utility paths: set-op bound summaries, logical
plan explain over every node type, and the bench dataset cache."""

from repro import BoundedEvaluabilityChecker, ConventionalEngine
from repro.bench.runner import cached_tlc
from repro.bounded.bounds import deduce_bounds

from tests.conftest import example1_access_schema, example1_database, example1_schema


class TestSetOpBounds:
    def test_deduce_bounds_over_union(self):
        checker = BoundedEvaluabilityChecker(
            example1_schema(), example1_access_schema()
        )
        decision = checker.check(
            "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east' "
            "UNION "
            "SELECT pnum FROM business WHERE type = 'shop' AND region = 'west'"
        )
        assert decision.covered
        summary = deduce_bounds(decision.plan)
        assert len(summary.fetches) == 2
        assert summary.access_bound == 4000
        assert "psi3" in summary.describe()

    def test_decision_describe_includes_budget_line(self):
        checker = BoundedEvaluabilityChecker(
            example1_schema(), example1_access_schema()
        )
        decision = checker.check(
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'",
            budget=600,
        )
        assert "within budget: True" in decision.describe()


class TestExplainAllNodes:
    def test_every_node_type_renders(self):
        engine = ConventionalEngine(example1_database())
        text = engine.explain(
            """
            SELECT DISTINCT b.region, COUNT(*) AS n
            FROM business b JOIN package p ON b.pnum = p.pnum
            WHERE b.type = 'bank' AND p.year = 2016 AND p.start <= p.end
            GROUP BY b.region HAVING COUNT(*) > 0
            ORDER BY n DESC LIMIT 5
            """
        )
        for fragment in (
            "Scan business", "Scan package", "Join", "Aggregate",
            "Sort", "Project", "Distinct", "Limit",
        ):
            assert fragment in text, fragment

    def test_set_op_explain(self):
        engine = ConventionalEngine(example1_database())
        text = engine.explain(
            "SELECT pnum FROM business UNION ALL SELECT pnum FROM business"
        )
        assert "UNION ALL" in text

    def test_materialized_node_explain(self):
        from repro.engine.logical import MaterializedNode, explain

        assert "Materialized [2 rows]" in explain(
            MaterializedNode(labels=["v"], rows=[(1,), (2,)])
        )


class TestDatasetCache:
    def test_cached_tlc_returns_same_object(self):
        first = cached_tlc(1)
        second = cached_tlc(1)
        assert first is second

    def test_different_scales_differ(self):
        assert cached_tlc(1) is not cached_tlc(2)
