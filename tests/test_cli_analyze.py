"""CLI analyze command + QueryResult helper coverage."""

import pytest

from repro.cli import main
from repro.engine.executor import QueryResult

from tests.test_cli import workspace, QUERY  # reuse the fixture


class TestAnalyzeCommand:
    def test_analyze_prints_panel(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "analyze", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BEAS:" in out
        assert "postgresql:" in out
        assert "per-operation breakdown" in out

    def test_analyze_uncovered_errors_cleanly(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "analyze", "--data", str(data), "--schema", str(schema),
                "--sql", "SELECT recnum FROM call",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryResultHelpers:
    def test_sorted_rows_handles_nulls_and_types(self):
        result = QueryResult(
            columns=["v"], rows=[(2,), (None,), (1,)]
        )
        # helper convention: NULLs sort last, values by type then value
        assert result.sorted_rows() == [(1,), (2,), (None,)]

    def test_sorted_rows_mixed_types_do_not_crash(self):
        result = QueryResult(columns=["v"], rows=[("b",), (1,), ("a",)])
        assert len(result.sorted_rows()) == 3

    def test_iteration_and_len(self):
        result = QueryResult(columns=["v"], rows=[(1,), (2,)])
        assert len(result) == 2
        assert list(result) == [(1,), (2,)]
        assert result.to_set() == {(1,), (2,)}
