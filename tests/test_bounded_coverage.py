"""BE Checker tests: coverage decisions, aggregate policy, budgets, set ops."""

import pytest

from repro import AccessConstraint, AccessSchema, BoundedEvaluabilityChecker
from repro.bounded.plan import SetOpPlan

from tests.conftest import EXAMPLE2_SQL, example1_access_schema, example1_schema


@pytest.fixture
def checker() -> BoundedEvaluabilityChecker:
    return BoundedEvaluabilityChecker(example1_schema(), example1_access_schema())


def keyed_schema() -> AccessSchema:
    """A schema whose call constraint exposes the key (bag-exact plans)."""
    schema = example1_access_schema()
    schema.add(
        AccessConstraint(
            "call", ["pnum", "date"], ["call_id", "recnum", "region"], 500,
            name="psi6",
        )
    )
    return schema


class TestBasicDecisions:
    def test_example2_covered(self, checker):
        decision = checker.check(EXAMPLE2_SQL)
        assert decision.covered
        assert decision.access_bound == 12_026_000
        assert [c.name for c in decision.constraints_used] == [
            "psi3", "psi2", "psi1",
        ]

    def test_not_covered_has_reasons(self, checker):
        decision = checker.check("SELECT recnum FROM call WHERE pnum = '1'")
        assert not decision.covered
        assert decision.reasons

    def test_describe_covered(self, checker):
        text = checker.check(EXAMPLE2_SQL).describe()
        assert "12026000" in text and "psi3" in text

    def test_describe_not_covered(self, checker):
        text = checker.check("SELECT recnum FROM call").describe()
        assert "NOT covered" in text

    def test_parse_error_is_a_clean_decision(self, checker):
        decision = checker.check("SELEKT broken !!")
        assert not decision.covered and decision.reasons

    def test_outside_fragment_reported(self, checker):
        decision = checker.check(
            "SELECT c.region FROM call c LEFT JOIN business b ON b.pnum = c.pnum"
        )
        assert not decision.covered
        assert any("SPJA" in r for r in decision.reasons)


class TestBudget:
    def test_within_budget(self, checker):
        decision = checker.check(EXAMPLE2_SQL, budget=20_000_000)
        assert decision.covered and decision.within_budget

    def test_over_budget(self, checker):
        decision = checker.check(EXAMPLE2_SQL, budget=1_000_000)
        assert decision.covered and decision.within_budget is False

    def test_no_budget_means_none(self, checker):
        assert checker.check(EXAMPLE2_SQL).within_budget is None

    def test_budget_boundary_inclusive(self, checker):
        decision = checker.check(EXAMPLE2_SQL, budget=12_026_000)
        assert decision.within_budget


class TestAggregatePolicy:
    def test_duplicate_insensitive_aggregates_covered_without_keys(self, checker):
        decision = checker.check(
            "SELECT COUNT(DISTINCT recnum) FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'"
        )
        assert decision.covered

    def test_min_max_covered_without_keys(self, checker):
        decision = checker.check(
            "SELECT MIN(recnum), MAX(recnum) FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'"
        )
        assert decision.covered

    def test_count_star_rejected_without_keys(self, checker):
        decision = checker.check(
            "SELECT COUNT(*) FROM call WHERE pnum = '1' AND date = '2016-06-01'"
        )
        assert not decision.covered
        assert any("bag-exact" in r for r in decision.reasons)

    def test_count_star_covered_with_keyed_constraint(self):
        checker = BoundedEvaluabilityChecker(example1_schema(), keyed_schema())
        decision = checker.check(
            "SELECT COUNT(*) FROM call WHERE pnum = '1' AND date = '2016-06-01'"
        )
        assert decision.covered and decision.bag_exact

    def test_sum_rejected_avg_rejected_without_keys(self, checker):
        for agg in ("SUM(call_id)", "AVG(call_id)"):
            decision = checker.check(
                f"SELECT {agg} FROM call WHERE pnum = '1' AND date = '2016-06-01'"
            )
            assert not decision.covered, agg

    def test_group_by_covered_with_keys(self):
        checker = BoundedEvaluabilityChecker(example1_schema(), keyed_schema())
        decision = checker.check(
            "SELECT region, COUNT(*) FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01' GROUP BY region"
        )
        assert decision.covered


class TestExactMultiplicityPolicy:
    SQL = "SELECT region FROM call WHERE pnum = '1' AND date = '2016-06-01'"

    def test_default_accepts_set_semantics(self, checker):
        decision = checker.check(self.SQL)
        assert decision.covered and not decision.bag_exact

    def test_strict_mode_rejects_without_keys(self):
        checker = BoundedEvaluabilityChecker(
            example1_schema(),
            example1_access_schema(),
            require_exact_multiplicities=True,
        )
        decision = checker.check(self.SQL)
        assert not decision.covered
        assert any("multiplicities" in r for r in decision.reasons)

    def test_strict_mode_accepts_with_keys(self):
        checker = BoundedEvaluabilityChecker(
            example1_schema(), keyed_schema(), require_exact_multiplicities=True
        )
        assert checker.check(self.SQL).covered

    def test_strict_mode_accepts_distinct(self):
        checker = BoundedEvaluabilityChecker(
            example1_schema(),
            example1_access_schema(),
            require_exact_multiplicities=True,
        )
        assert checker.check(
            "SELECT DISTINCT region FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'"
        ).covered


class TestSetOperations:
    LEFT = "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east'"
    RIGHT = "SELECT pnum FROM business WHERE type = 'shop' AND region = 'east'"

    def test_union_of_covered_is_covered(self, checker):
        decision = checker.check(f"{self.LEFT} UNION {self.RIGHT}")
        assert decision.covered
        assert isinstance(decision.plan, SetOpPlan)
        assert decision.access_bound == 4000

    def test_except_intersect_covered(self, checker):
        for op in ("EXCEPT", "INTERSECT"):
            assert checker.check(f"{self.LEFT} {op} {self.RIGHT}").covered

    def test_union_with_uncovered_side_rejected(self, checker):
        decision = checker.check(
            f"{self.LEFT} UNION SELECT pnum FROM package WHERE year = 2016"
        )
        assert not decision.covered
        assert any("right argument" in r for r in decision.reasons)

    def test_union_all_requires_bag_exactness(self, checker):
        decision = checker.check(f"{self.LEFT} UNION ALL {self.RIGHT}")
        # business is keyed by pnum and psi3 exposes pnum => bag-exact, OK
        assert decision.covered

    def test_union_all_rejected_without_keys(self, checker):
        sql = (
            "SELECT region FROM call WHERE pnum = '1' AND date = '2016-06-01' "
            "UNION ALL "
            "SELECT region FROM call WHERE pnum = '2' AND date = '2016-06-01'"
        )
        decision = checker.check(sql)
        assert not decision.covered
        assert any("UNION ALL" in r for r in decision.reasons)

    def test_constraints_used_merged_without_duplicates(self, checker):
        decision = checker.check(f"{self.LEFT} UNION {self.RIGHT}")
        assert [c.name for c in decision.constraints_used] == ["psi3"]
