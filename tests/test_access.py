"""Access schema subsystem tests: constraints, index, conformance, catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AccessConstraint, AccessIndex, AccessSchema, ASCatalog, Database
from repro.access.conformance import check_constraint, check_database
from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.catalog.types import DataType
from repro.errors import AccessSchemaError, ConformanceError
from repro.storage.table import Table

from tests.conftest import example1_access_schema, example1_database


def rel_schema() -> TableSchema:
    return TableSchema(
        "r", [("x", DataType.INT), ("y", DataType.INT), ("z", DataType.STRING)],
        keys=[("x", "y")],
    )


class TestAccessConstraint:
    def test_attributes_sorted_and_deduped(self):
        c = AccessConstraint("r", ["y", "x", "x"], ["z"], 5)
        assert c.x == ("x", "y") and c.y == ("z",)

    def test_str_rendering(self):
        c = AccessConstraint("r", ["x"], ["y"], 3, name="psi")
        assert str(c) == "psi: r({x} -> {y}, 3)"

    def test_empty_x_allowed(self):
        c = AccessConstraint("r", [], ["y"], 10)
        assert c.x == ()

    def test_empty_y_rejected(self):
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["x"], [], 3)

    def test_overlapping_x_y_rejected(self):
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["x"], ["x", "y"], 3)

    def test_negative_n_rejected(self):
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["x"], ["y"], -1)

    def test_validate_against_schema(self):
        AccessConstraint("r", ["x"], ["y"], 1).validate_against(rel_schema())

    def test_validate_rejects_unknown_attr(self):
        with pytest.raises(AccessSchemaError):
            AccessConstraint("r", ["nope"], ["y"], 1).validate_against(rel_schema())

    def test_validate_rejects_wrong_relation(self):
        with pytest.raises(AccessSchemaError):
            AccessConstraint("other", ["x"], ["y"], 1).validate_against(rel_schema())

    def test_covers_key(self):
        assert AccessConstraint("r", ["x"], ["y"], 1).covers_key_of(rel_schema())
        assert not AccessConstraint("r", ["x"], ["z"], 1).covers_key_of(rel_schema())

    def test_auto_names_unique(self):
        a = AccessConstraint("r", ["x"], ["y"], 1)
        b = AccessConstraint("r", ["x"], ["y"], 1)
        assert a.name != b.name

    def test_equality_ignores_name(self):
        a = AccessConstraint("r", ["x"], ["y"], 1, name="a")
        b = AccessConstraint("r", ["x"], ["y"], 1, name="b")
        assert a == b


class TestAccessIndex:
    def make_table(self, rows) -> Table:
        return Table(rel_schema(), rows)

    def test_build_and_fetch(self):
        table = self.make_table([(1, 10, "a"), (1, 20, "b"), (2, 10, "c")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        assert sorted(index.fetch((1,))) == [(10,), (20,)]
        assert index.fetch((2,)) == [(10,)]
        assert index.fetch((99,)) == []

    def test_fetch_distinct_y_values(self):
        table = self.make_table([(1, 10, "a"), (1, 10, "b")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        assert index.fetch((1,)) == [(10,)]

    def test_multi_attribute_key_order_is_sorted_x(self):
        table = self.make_table([(1, 10, "a")])
        # declared as [y, x] but canonical order is (x, y)
        index = AccessIndex(AccessConstraint("r", ["y", "x"], ["z"], 5), table)
        assert index.fetch((1, 10)) == [("a",)]

    def test_build_validates_bound(self):
        table = self.make_table([(1, 10, "a"), (1, 20, "b")])
        with pytest.raises(ConformanceError):
            AccessIndex(AccessConstraint("r", ["x"], ["y"], 1), table)

    def test_build_without_validation_allows_overflow(self):
        table = self.make_table([(1, 10, "a"), (1, 20, "b")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 1))
        index.build(table, validate=False)
        assert index.max_bucket_size == 2

    def test_fetch_many_dedupes_preserving_order(self):
        table = self.make_table([(1, 10, "a"), (2, 10, "b"), (2, 30, "c")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        assert index.fetch_many([(1,), (2,)]) == [(10,), (30,)]

    def test_entry_and_key_counts(self):
        table = self.make_table([(1, 10, "a"), (1, 20, "b"), (2, 10, "c")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        assert index.key_count == 2
        assert index.entry_count == 3
        assert index.storage_cells() == 2 * 1 + 3 * 1

    def test_insert_then_delete_row_restores_state(self):
        table = self.make_table([(1, 10, "a")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        before = index.snapshot()
        index.insert_row((1, 30, "q"))
        assert index.fetch((1,)) == [(10,), (30,)]
        index.delete_row((1, 30, "q"))
        assert index.snapshot() == before

    def test_delete_respects_support_counts(self):
        # two rows supporting the same (x, y): deleting one keeps the entry
        table = self.make_table([(1, 10, "a"), (1, 10, "b")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        index.delete_row((1, 10, "a"))
        assert index.fetch((1,)) == [(10,)]
        index.delete_row((1, 10, "b"))
        assert index.fetch((1,)) == []

    def test_delete_missing_row_rejected(self):
        table = self.make_table([(1, 10, "a")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 5), table)
        with pytest.raises(AccessSchemaError):
            index.delete_row((9, 9, "q"))

    def test_insert_violation_detected(self):
        table = self.make_table([(1, 10, "a")])
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 1), table)
        with pytest.raises(ConformanceError):
            index.insert_row((1, 20, "b"))

    def test_unbuilt_index_rejects_updates(self):
        index = AccessIndex(AccessConstraint("r", ["x"], ["y"], 1))
        with pytest.raises(AccessSchemaError):
            index.insert_row((1, 10, "a"))

    def test_empty_x_constraint(self):
        table = self.make_table([(1, 10, "a"), (2, 20, "b")])
        index = AccessIndex(AccessConstraint("r", [], ["y"], 10), table)
        assert sorted(index.fetch(())) == [(10,), (20,)]

    @settings(max_examples=60, deadline=None)
    @given(
        initial=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.sampled_from("ab")),
            max_size=15,
        ),
        inserts=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.sampled_from("ab")),
            max_size=8,
        ),
        delete_positions=st.lists(st.integers(0, 100), max_size=6),
    )
    def test_incremental_equals_rebuild(self, initial, inserts, delete_positions):
        """After arbitrary updates, incremental state == full rebuild."""
        constraint = AccessConstraint("r", ["x"], ["y", "z"], 100)
        table = self.make_table(initial)
        index = AccessIndex(constraint, table)

        for row in inserts:
            table.insert(row)
            index.insert_row(row)
        for position in delete_positions:
            if not table.rows:
                break
            row = table.rows[position % len(table.rows)]
            table.delete_rows([row])
            index.delete_row(row)

        rebuilt = AccessIndex(constraint, table)
        assert index.snapshot() == rebuilt.snapshot()


class TestConformance:
    def test_conforming_database(self, ):
        db = example1_database()
        report = check_database(db, example1_access_schema())
        assert report.conforms
        assert report.checked_constraints == 3

    def test_violation_reported_with_details(self):
        table = Table(rel_schema(), [(1, 10, "a"), (1, 20, "b"), (1, 30, "c")])
        report = check_constraint(table, AccessConstraint("r", ["x"], ["y"], 2))
        assert not report.conforms
        assert report.violations[0].actual == 3
        assert report.violations[0].x_value == (1,)
        assert "bound 2" in str(report.violations[0])

    def test_tightest_bound(self):
        table = Table(rel_schema(), [(1, 10, "a"), (1, 20, "b"), (2, 10, "c")])
        report = check_constraint(table, AccessConstraint("r", ["x"], ["y"], 99))
        assert report.tightest_bound() == 2

    def test_empty_table_conforms(self):
        report = check_constraint(
            Table(rel_schema()), AccessConstraint("r", ["x"], ["y"], 0)
        )
        assert report.conforms


class TestAccessSchema:
    def test_add_get_remove(self):
        schema = AccessSchema()
        c = AccessConstraint("r", ["x"], ["y"], 1, name="c1")
        schema.add(c)
        assert schema.get("c1") is c
        assert "c1" in schema
        schema.remove("c1")
        assert "c1" not in schema

    def test_duplicate_name_rejected(self):
        schema = AccessSchema([AccessConstraint("r", ["x"], ["y"], 1, name="c1")])
        with pytest.raises(AccessSchemaError):
            schema.add(AccessConstraint("r", ["x"], ["z"], 1, name="c1"))

    def test_constraints_for_relation(self):
        schema = example1_access_schema()
        assert [c.name for c in schema.constraints_for("call")] == ["psi1"]

    def test_relations(self):
        assert example1_access_schema().relations() == {
            "call", "package", "business",
        }

    def test_validate_against_database_schema(self, ex1_schema):
        example1_access_schema().validate_against(ex1_schema)

    def test_describe_lists_all(self):
        text = example1_access_schema().describe()
        assert "psi1" in text and "psi3" in text


class TestASCatalog:
    def test_register_builds_index_and_stats(self):
        db = example1_database()
        catalog = ASCatalog(db)
        constraint = AccessConstraint(
            "call", ["pnum", "date"], ["recnum", "region"], 500, name="psi1"
        )
        index = catalog.register(constraint)
        assert index.key_count > 0
        stats = catalog.statistics_for("psi1")
        assert stats.relation == "call"
        assert stats.entry_count == index.entry_count

    def test_register_validates_conformance(self):
        db = example1_database()
        catalog = ASCatalog(db)
        tight = AccessConstraint("call", ["pnum"], ["recnum"], 1, name="bad")
        with pytest.raises(ConformanceError):
            catalog.register(tight)

    def test_constructor_builds_all(self):
        catalog = ASCatalog(example1_database(), example1_access_schema())
        assert len(catalog.statistics()) == 3

    def test_index_for_unregistered_rejected(self):
        catalog = ASCatalog(example1_database())
        with pytest.raises(AccessSchemaError):
            catalog.index_for(AccessConstraint("call", ["pnum"], ["recnum"], 5))

    def test_unregister(self):
        catalog = ASCatalog(example1_database(), example1_access_schema())
        catalog.unregister("psi1")
        assert "psi1" not in catalog.schema
        assert all(s.constraint_name != "psi1" for s in catalog.statistics())

    def test_total_storage(self):
        catalog = ASCatalog(example1_database(), example1_access_schema())
        assert catalog.total_storage_cells() == sum(
            s.storage_cells for s in catalog.statistics()
        )

    def test_verify_conformance(self):
        catalog = ASCatalog(example1_database(), example1_access_schema())
        assert catalog.verify_conformance().conforms
        catalog.require_conformance()  # must not raise

    def test_require_conformance_raises_after_drift(self):
        db = example1_database()
        catalog = ASCatalog(db, example1_access_schema())
        # sneak rows in behind the catalog's back until psi2 (N=12) breaks
        for i in range(13):
            db.insert("package", (100 + i, "100", f"p{i}", "2016-01-01", "2016-12-31", 2016))
        with pytest.raises(ConformanceError):
            catalog.require_conformance()
