"""The distributed serving tier: coordinator + read replicas over TCP.

Covers the fleet's contract end to end: option validation and engine
pinning, constraint-group placement and template routing, version-vector
consistent serves (delta re-ship after maintenance), death/failover with
in-coordinator fallback and budgeted respawn, the ``FleetStats`` /
``ServingStats.fleet`` surfaces, and the ``serve-stats --replicas`` CLI.

Every test uses its own port range (``_ports``) so replica listeners
never collide across tests, and oracles always run with ``replicas=1``.
"""

from __future__ import annotations

import itertools

import pytest

from repro import BEAS
from repro.beas.session import ExecutionOptions, Session
from repro.errors import BEASError
from repro import config

from tests.conftest import example1_access_schema, example1_database

_PORTS = itertools.count(7800, 16)


def _ports() -> int:
    """A fresh, per-test base port (replica i listens on base + i)."""
    return next(_PORTS)


CALL_SQL = (
    "SELECT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)
PACKAGE_SQL = "SELECT pid FROM package WHERE pnum = '100' AND year = 2016"
BUSINESS_SQL = (
    "SELECT pnum FROM business WHERE type = 'bank' AND region = 'east'"
)
JOIN_SQL = (
    "SELECT call.region FROM call, package, business "
    "WHERE business.type = 'bank' AND business.region = 'east' "
    "AND business.pnum = call.pnum AND call.date = '2016-06-01' "
    "AND call.pnum = package.pnum AND package.year = 2016 "
    "AND package.start <= '2016-06-01' AND package.end >= '2016-06-01' "
    "AND package.pid = 'c0'"
)


@pytest.fixture
def fleet_beas():
    beas = BEAS(
        example1_database(),
        example1_access_schema(),
        replicas=3,
        fleet_port_base=_ports(),
    )
    yield beas
    beas.close()


@pytest.fixture
def oracle_beas():
    beas = BEAS(example1_database(), example1_access_schema())
    yield beas
    beas.close()


# --------------------------------------------------------------------------- #
# configuration and option plumbing
# --------------------------------------------------------------------------- #
class TestConfig:
    def test_validate_replicas_rejects_non_positive(self):
        with pytest.raises(BEASError):
            config.validate_replicas(0)
        with pytest.raises(BEASError):
            config.validate_replicas(-2)
        with pytest.raises(BEASError):
            config.validate_replicas("three")

    def test_validate_fleet_port_base_bounds(self):
        assert config.validate_fleet_port_base(7641) == 7641
        with pytest.raises(BEASError):
            config.validate_fleet_port_base(80)  # privileged
        with pytest.raises(BEASError):
            config.validate_fleet_port_base(70_000)  # off the port space

    def test_env_readers(self, monkeypatch):
        monkeypatch.setenv(config.ENV_REPLICAS, "4")
        monkeypatch.setenv(config.ENV_FLEET_PORT_BASE, "9100")
        assert config.env_replicas() == 4
        assert config.env_fleet_port_base() == 9100
        env = config.load_env_config()
        assert env.replicas == 4 and env.fleet_port_base == 9100
        monkeypatch.setenv(config.ENV_REPLICAS, "0")
        with pytest.raises(BEASError):
            config.env_replicas()

    def test_options_validate_at_construction(self):
        with pytest.raises(BEASError):
            ExecutionOptions(replicas=0)
        with pytest.raises(BEASError):
            ExecutionOptions(fleet_port_base=99)

    def test_replicas_is_engine_pinned(self, oracle_beas):
        session = Session(beas=oracle_beas)
        query = session.query(CALL_SQL)
        with pytest.raises(BEASError, match="replicas"):
            query.run(options=ExecutionOptions(replicas=3))

    def test_default_is_in_process(self, oracle_beas):
        assert oracle_beas.replicas == 1
        assert oracle_beas.fleet is None
        assert oracle_beas.fleet_stats() is None
        result = oracle_beas.session().query(CALL_SQL).run()
        assert result.metrics.replica_id == -1
        assert result.metrics.wire_seconds == 0.0

    def test_fleet_needs_two_replicas(self, oracle_beas):
        from repro.distributed.fleet import ReplicaFleet

        with pytest.raises(BEASError):
            ReplicaFleet(oracle_beas.catalog, replicas=1, port_base=_ports())


# --------------------------------------------------------------------------- #
# the shared snapshot protocol
# --------------------------------------------------------------------------- #
class TestSharedProtocol:
    def test_pool_and_fleet_share_the_protocol_vocabulary(self):
        # the engine pool's pipe protocol and the fleet's socket protocol
        # must be the same state machine, not two drifting copies
        from repro.distributed import protocol
        from repro.engine import pool

        assert pool._SnapshotCatalog is protocol.SnapshotCatalog
        assert pool.REPLY_STALE is protocol.REPLY_STALE
        assert pool.compute_with_stale_retry is protocol.compute_with_stale_retry

    def test_stale_retry_state_machine(self):
        from repro.distributed.protocol import (
            REPLY_RESULT,
            REPLY_STALE,
            StalePeer,
            compute_with_stale_retry,
        )

        calls = {"ensure": 0, "stale": 0}
        replies = iter([(REPLY_STALE, None), (REPLY_RESULT, "rows")])

        def ensure():
            calls["ensure"] += 1

        def on_stale():
            calls["stale"] += 1

        reply = compute_with_stale_retry(
            ensure=ensure, roundtrip=lambda: next(replies), on_stale=on_stale
        )
        assert reply == (REPLY_RESULT, "rows")
        assert calls == {"ensure": 2, "stale": 1}

        always_stale = itertools.repeat((REPLY_STALE, None))
        with pytest.raises(StalePeer):
            compute_with_stale_retry(
                ensure=ensure,
                roundtrip=lambda: next(always_stale),
                on_stale=on_stale,
            )


# --------------------------------------------------------------------------- #
# placement, routing, and consistent serves
# --------------------------------------------------------------------------- #
class TestServing:
    def test_single_constraint_queries_route_to_distinct_replicas(
        self, fleet_beas, oracle_beas
    ):
        session = fleet_beas.session()
        oracle = oracle_beas.session()
        served_by = {}
        for sql in (CALL_SQL, PACKAGE_SQL, BUSINESS_SQL):
            result = session.query(sql).run(use_result_cache=False)
            expected = oracle.query(sql).run(use_result_cache=False)
            assert result.rows == expected.rows
            assert result.metrics.tuples_fetched == expected.metrics.tuples_fetched
            assert result.metrics.replica_id >= 0
            assert result.metrics.wire_seconds > 0.0
            served_by[sql] = result.metrics.replica_id
        # three constraints round-robined over three replicas: each
        # template lands on its own replica
        assert len(set(served_by.values())) == 3
        stats = fleet_beas.fleet_stats()
        assert stats.plans_dispatched == 3
        assert sum(stats.serves.values()) == 3
        assert stats.alive == 3

    def test_cross_replica_template_falls_back_in_coordinator(
        self, fleet_beas, oracle_beas
    ):
        # the join needs psi1+psi2+psi3, which placement scattered over
        # three replicas: no single replica covers it, so the
        # coordinator answers locally and counts the routing miss
        result = (
            fleet_beas.session().query(JOIN_SQL).run(use_result_cache=False)
        )
        expected = (
            oracle_beas.session().query(JOIN_SQL).run(use_result_cache=False)
        )
        assert result.rows == expected.rows
        assert result.metrics.replica_id == -1
        stats = fleet_beas.fleet_stats()
        assert stats.routing_misses >= 1
        assert stats.fallbacks >= 1
        assert stats.plans_dispatched == 0

    def test_maintenance_then_read_ships_delta_and_stays_exact(
        self, fleet_beas, oracle_beas
    ):
        session = fleet_beas.session()
        query = session.query(CALL_SQL)
        query.run(use_result_cache=False)  # snapshot installed
        base = fleet_beas.fleet_stats()
        assert base.snapshots_sent >= 1

        new_rows = [(800, "100", "801", "2016-06-01", "delta-town")]
        fleet_beas.insert("call", new_rows)
        oracle_beas.insert("call", new_rows)
        result = query.run(use_result_cache=False)
        expected = (
            oracle_beas.session().query(CALL_SQL).run(use_result_cache=False)
        )
        assert result.rows == expected.rows
        assert result.metrics.replica_id >= 0  # still served remotely
        stats = fleet_beas.fleet_stats()
        # the one-batch catch-up travels as a delta, not a full snapshot
        assert stats.delta_reships == base.delta_reships + 1
        assert stats.delta_records_shipped >= 1
        assert stats.snapshots_sent == base.snapshots_sent

    def test_delete_delta_keeps_replicas_exact(self, fleet_beas, oracle_beas):
        session = fleet_beas.session()
        query = session.query(CALL_SQL)
        query.run(use_result_cache=False)
        victim = [(1, "100", "555", "2016-06-01", "north")]
        fleet_beas.delete("call", victim)
        oracle_beas.delete("call", victim)
        result = query.run(use_result_cache=False)
        expected = (
            oracle_beas.session().query(CALL_SQL).run(use_result_cache=False)
        )
        assert result.rows == expected.rows
        assert result.metrics.replica_id >= 0

    def test_cold_replica_after_many_batches_full_reships(self, fleet_beas):
        # more batches than the delta tail retains, against a replica
        # that never held a snapshot: the catch-up must be a full
        # snapshot ship, and the answer must include every batch
        from repro.distributed.fleet import DELTA_TAIL_RECORDS

        for i in range(DELTA_TAIL_RECORDS + 4):
            fleet_beas.insert(
                "call", [(900 + i, "100", f"t{i}", "2016-06-01", "tail")]
            )
        result = (
            fleet_beas.session().query(CALL_SQL).run(use_result_cache=False)
        )
        assert result.metrics.replica_id >= 0
        tails = [row for row in result.rows if row[1] == "tail"]
        assert len(tails) == DELTA_TAIL_RECORDS + 4
        stats = fleet_beas.fleet_stats()
        assert stats.snapshots_sent >= 1

    def test_serving_stats_surface_fleet_counters(self, fleet_beas):
        session = fleet_beas.session()
        session.query(CALL_SQL).run(use_result_cache=False)
        stats = session.stats()
        assert stats.fleet is not None
        assert stats.fleet.plans_dispatched == 1
        text = stats.describe()
        assert "serving fleet:" in text
        assert "replicas alive" in text


# --------------------------------------------------------------------------- #
# death, failover, respawn
# --------------------------------------------------------------------------- #
class TestFailover:
    def test_replica_death_fails_over_then_respawns(
        self, fleet_beas, oracle_beas
    ):
        session = fleet_beas.session()
        query = session.query(CALL_SQL)
        first = query.run(use_result_cache=False)
        victim = first.metrics.replica_id
        assert victim >= 0

        # die_on_next_task: the replica exits mid-dispatch, so the death
        # is only discovered when the plan's reply never arrives — the
        # answer must come from the coordinator, not hang or be wrong
        fleet_beas.fleet.debug("die_on_next_task", replica_id=victim)
        during = query.run(use_result_cache=False)
        expected = (
            oracle_beas.session().query(CALL_SQL).run(use_result_cache=False)
        )
        assert during.rows == expected.rows
        assert during.metrics.replica_id == -1
        stats = fleet_beas.fleet_stats()
        assert stats.failovers >= 1
        assert stats.fallbacks >= 1

        # the next dispatch respawns the replica and serves remotely again
        after = query.run(use_result_cache=False)
        assert after.rows == expected.rows
        assert after.metrics.replica_id == victim
        stats = fleet_beas.fleet_stats()
        assert stats.respawns >= 1
        assert stats.alive == 3

    def test_respawn_budget_caps_crash_loops(self, fleet_beas):
        from repro.distributed.fleet import RESPAWN_BUDGET

        session = fleet_beas.session()
        query = session.query(CALL_SQL)
        victim = query.run(use_result_cache=False).metrics.replica_id
        exhausted = False
        for _ in range(RESPAWN_BUDGET + 2):
            try:
                fleet_beas.fleet.debug("die", replica_id=victim)
            except BEASError:
                # budget exhausted: the replica stays down for good
                exhausted = True
                break
            # every serve stays correct; respawns are budgeted, and once
            # the budget is spent the template is answered in-coordinator
            result = query.run(use_result_cache=False)
            assert result.rows
        assert exhausted
        stats = fleet_beas.fleet_stats()
        assert stats.respawns <= RESPAWN_BUDGET
        final = query.run(use_result_cache=False)
        assert final.rows
        assert final.metrics.replica_id == -1

    def test_close_is_idempotent_and_kills_replicas(self, fleet_beas):
        session = fleet_beas.session()
        session.query(CALL_SQL).run(use_result_cache=False)
        fleet = fleet_beas.fleet
        processes = [r.process for r in fleet._replicas]
        fleet_beas.close()
        fleet_beas.close()
        assert fleet.closed
        for process in processes:
            process.join(timeout=10)
            assert not process.is_alive()
        # serving still works after the fleet is gone — and, mirroring
        # the engine pool's close() contract, the next covered execute
        # transparently restarts a fresh fleet
        result = session.query(CALL_SQL).run(use_result_cache=False)
        assert result.rows
        assert result.metrics.replica_id >= 0
        assert fleet_beas.fleet is not fleet
        fleet_beas.close()


# --------------------------------------------------------------------------- #
# the CLI surface
# --------------------------------------------------------------------------- #
class TestCli:
    def test_serve_stats_with_replicas(self, tmp_path, capsys):
        from repro.cli import main
        from repro.access.io import dump_schema
        from repro.storage.csvio import dump_csv

        data = tmp_path / "data"
        data.mkdir()
        for table in example1_database():
            dump_csv(table, data / f"{table.schema.name}.csv")
        schema_path = tmp_path / "schema.json"
        dump_schema(example1_access_schema(), schema_path)

        code = main(
            [
                "serve-stats",
                "--data", str(data),
                "--schema", str(schema_path),
                "--sql", CALL_SQL,
                "--repeat", "3",
                "--replicas", "2",
                "--fleet-port-base", str(_ports()),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet: replica=" in out
        assert "serving fleet:" in out
        assert "stale reships" in out and "failovers" in out
