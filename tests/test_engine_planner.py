"""Unit tests for the conventional planner (pushdown, join order, tail)."""

import pytest

from repro.catalog.statistics import TableStatistics, ColumnStatistics
from repro.engine.logical import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.engine.planner import aggregate_calls_of, plan_conjunctive_query
from repro.sql.normalize import normalize
from repro.sql.parser import parse

from tests.conftest import example1_schema


def plan(sql: str, stats: dict | None = None):
    cq = normalize(parse(sql), example1_schema())
    return plan_conjunctive_query(cq, stats or {})


def scans_of(node) -> list[ScanNode]:
    out = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ScanNode):
            out.append(current)
        for attr in ("child", "left", "right"):
            child = getattr(current, attr, None)
            if child is not None:
                stack.append(child)
    return out


def stats_for(**row_counts: int) -> dict:
    out = {}
    for table, rows in row_counts.items():
        stats = TableStatistics(table=table, row_count=rows)
        out[table] = stats
    return out


class TestPushdown:
    def test_selection_pushed_into_scan(self):
        root = plan("SELECT recnum FROM call WHERE pnum = '1'")
        (scan,) = scans_of(root)
        assert scan.predicate is not None

    def test_single_table_filter_pushed(self):
        root = plan("SELECT recnum FROM call WHERE date >= '2016-01-01'")
        (scan,) = scans_of(root)
        assert scan.predicate is not None

    def test_early_projection_narrows_columns(self):
        root = plan("SELECT recnum FROM call WHERE pnum = '1'")
        (scan,) = scans_of(root)
        assert set(scan.columns) == {"recnum", "pnum"}

    def test_cross_binding_filter_stays_above_join(self):
        root = plan(
            "SELECT c.recnum FROM call c, business b "
            "WHERE c.pnum = b.pnum AND c.region > b.region"
        )
        filters = [
            n for n in _walk(root) if isinstance(n, FilterNode)
        ]
        assert len(filters) == 1

    def test_intra_occurrence_equality_pushed(self):
        root = plan("SELECT recnum FROM call WHERE pnum = recnum")
        (scan,) = scans_of(root)
        assert scan.predicate is not None


def _walk(node):
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for attr in ("child", "left", "right"):
            child = getattr(current, attr, None)
            if child is not None:
                stack.append(child)


class TestJoinOrdering:
    SQL = """
        SELECT c.region FROM call c, package p, business b
        WHERE b.pnum = c.pnum AND c.pnum = p.pnum
    """

    def test_cheapest_edge_joins_first(self):
        """business (10 rows) ⋈ call comes before the package join."""
        stats = stats_for(call=1_000_000, package=10_000, business=10)
        root = plan(self.SQL, stats)
        joins = [n for n in _walk(root) if isinstance(n, JoinNode)]
        assert len(joins) == 2
        leaf_joins = [
            j
            for j in joins
            if isinstance(j.left, ScanNode) and isinstance(j.right, ScanNode)
        ]
        assert len(leaf_joins) == 1
        first_tables = {s.table_name for s in scans_of(leaf_joins[0])}
        assert first_tables == {"business", "call"}

    def test_no_cross_join_when_edges_exist(self):
        stats = stats_for(call=100, package=100, business=100)
        root = plan(self.SQL, stats)
        joins = [n for n in _walk(root) if isinstance(n, JoinNode)]
        assert all(j.pairs for j in joins)

    def test_cross_join_as_last_resort(self):
        root = plan("SELECT c.region FROM call c, business b", stats_for())
        joins = [n for n in _walk(root) if isinstance(n, JoinNode)]
        assert len(joins) == 1 and not joins[0].pairs


class TestTail:
    def test_aggregate_node_collects_calls(self):
        root = plan(
            "SELECT pid, COUNT(*), SUM(pkg_id) FROM package GROUP BY pid"
        )
        (aggregate,) = [n for n in _walk(root) if isinstance(n, AggregateNode)]
        assert len(aggregate.calls) == 2

    def test_aggregate_calls_of_includes_having_and_order(self):
        cq = normalize(
            parse(
                "SELECT pid FROM package GROUP BY pid "
                "HAVING COUNT(*) > 1 ORDER BY MAX(pkg_id)"
            ),
            example1_schema(),
        )
        assert len(aggregate_calls_of(cq)) == 2

    def test_sort_sits_below_project(self):
        root = plan("SELECT recnum FROM call ORDER BY date")
        nodes = list(_walk(root))
        sort_depth = next(
            i for i, n in enumerate(nodes) if isinstance(n, SortNode)
        )
        project_depth = next(
            i for i, n in enumerate(nodes) if isinstance(n, ProjectNode)
        )
        # walking is pre-order from the root: project is seen before sort
        assert project_depth < sort_depth

    def test_distinct_and_limit_on_top(self):
        root = plan("SELECT DISTINCT recnum FROM call LIMIT 3")
        assert isinstance(root, LimitNode)
        assert isinstance(root.child, DistinctNode)

    def test_order_by_alias_rewritten(self):
        root = plan(
            "SELECT pid, COUNT(*) AS cnt FROM package GROUP BY pid "
            "ORDER BY cnt DESC"
        )
        (sort,) = [n for n in _walk(root) if isinstance(n, SortNode)]
        from repro.sql import ast

        assert isinstance(sort.order_by[0].expression, ast.FunctionCall)
