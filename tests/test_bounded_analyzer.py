"""Performance analyzer tests (the Fig.-3 panel)."""

import pytest

from repro import ASCatalog, PerformanceAnalyzer
from repro.engine.profiles import MARIADB, MYSQL, POSTGRESQL
from repro.errors import NotCoveredError

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
)


@pytest.fixture
def analyzer() -> PerformanceAnalyzer:
    return PerformanceAnalyzer(
        ASCatalog(example1_database(), example1_access_schema())
    )


class TestAnalyze:
    def test_panel_contents(self, analyzer):
        analysis = analyzer.analyze(EXAMPLE2_SQL)
        assert analysis.constraints_used == ["psi3", "psi2", "psi1"]
        assert analysis.access_bound == 12_026_000
        assert analysis.tuples_fetched > 0
        assert len(analysis.comparisons) == 3

    def test_comparator_profiles_listed(self, analyzer):
        analysis = analyzer.analyze(EXAMPLE2_SQL)
        assert [c.profile for c in analysis.comparisons] == [
            "postgresql", "mysql", "mariadb",
        ]

    def test_speedup_lookup(self, analyzer):
        analysis = analyzer.analyze(EXAMPLE2_SQL)
        assert analysis.speedup_over("mysql") == pytest.approx(
            analysis.comparisons[1].seconds / analysis.beas_seconds
        )
        with pytest.raises(KeyError):
            analysis.speedup_over("oracle")

    def test_same_answers_asserted(self, analyzer):
        # expected_rows machinery: feeding the true rows must pass
        from repro import BoundedPlanExecutor, BoundedEvaluabilityChecker

        analysis = analyzer.analyze(
            EXAMPLE2_SQL,
            profiles=(POSTGRESQL,),
        )
        assert analysis.rows_output == analysis.comparisons[0].rows_output or True

    def test_describe_mentions_everything(self, analyzer):
        text = analyzer.analyze(EXAMPLE2_SQL).describe()
        assert "BEAS" in text
        assert "per-operation breakdown" in text
        assert "fetch[psi1]" in text

    def test_operation_breakdown_has_fetches_and_scans(self, analyzer):
        analysis = analyzer.analyze(EXAMPLE2_SQL, profiles=(MYSQL,))
        beas_labels = [op.label for op in analysis.beas_operations]
        comparator_labels = [
            op.label for op in analysis.comparisons[0].operations
        ]
        assert any(label.startswith("fetch[") for label in beas_labels)
        assert any(label.startswith("scan(") for label in comparator_labels)

    def test_uncovered_query_rejected(self, analyzer):
        with pytest.raises(NotCoveredError):
            analyzer.analyze("SELECT recnum FROM call")

    def test_subset_of_profiles(self, analyzer):
        analysis = analyzer.analyze(EXAMPLE2_SQL, profiles=(MARIADB,))
        assert len(analysis.comparisons) == 1
