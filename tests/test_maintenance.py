"""Maintenance tests: incremental updates, violation policies, drift monitor."""

import pytest

from repro import AccessConstraint, AccessIndex, ASCatalog
from repro.errors import MaintenanceError
from repro.maintenance import (
    DriftMonitor,
    MaintenanceManager,
    ViolationPolicy,
)

from tests.conftest import example1_access_schema, example1_database


@pytest.fixture
def catalog() -> ASCatalog:
    return ASCatalog(example1_database(), example1_access_schema())


@pytest.fixture
def manager(catalog) -> MaintenanceManager:
    return MaintenanceManager(catalog)


class TestInsert:
    def test_insert_updates_table_and_indices(self, catalog, manager):
        before = len(catalog.database.table("call"))
        batch = manager.insert(
            "call", [(100, "100", "999", "2016-06-03", "east")]
        )
        assert batch.inserted == 1
        assert len(catalog.database.table("call")) == before + 1
        index = catalog.index_for(catalog.schema.get("psi1"))
        assert ("999", "east") in index.fetch(("2016-06-03", "100"))

    def test_incremental_equals_rebuild_after_batch(self, catalog, manager):
        manager.insert(
            "call",
            [
                (101, "100", "888", "2016-06-04", "east"),
                (102, "101", "777", "2016-06-04", "west"),
            ],
        )
        constraint = catalog.schema.get("psi1")
        live = catalog.index_for(constraint)
        rebuilt = AccessIndex(constraint, catalog.database.table("call"))
        assert live.snapshot() == rebuilt.snapshot()

    def test_reject_policy_rolls_back_atomically(self, catalog, manager):
        """A batch whose last row violates psi2 (N=12) must leave no trace."""
        table = catalog.database.table("package")
        before_rows = list(table.rows)
        constraint = catalog.schema.get("psi2")
        before_index = catalog.index_for(constraint).snapshot()

        violating = [
            (50 + i, "200", f"p{i}", "2016-01-01", "2016-12-31", 2016)
            for i in range(13)  # 13 distinct packages for one (pnum, year)
        ]
        with pytest.raises(MaintenanceError):
            manager.insert("package", violating)
        assert table.rows == before_rows
        assert catalog.index_for(constraint).snapshot() == before_index

    def test_adjust_policy_widens_bound(self, catalog):
        manager = MaintenanceManager(catalog, policy=ViolationPolicy.ADJUST)
        violating = [
            (50 + i, "200", f"p{i}", "2016-01-01", "2016-12-31", 2016)
            for i in range(13)
        ]
        batch = manager.insert("package", violating)
        assert "psi2" in batch.adjusted_constraints
        assert catalog.schema.get("psi2").n == 13
        # the index object now reports the widened constraint
        assert catalog.index_for(catalog.schema.get("psi2")).constraint.n == 13

    def test_adjust_policy_no_change_when_conforming(self, catalog):
        manager = MaintenanceManager(catalog, policy=ViolationPolicy.ADJUST)
        batch = manager.insert("call", [(200, "100", "123", "2016-06-05", "east")])
        assert batch.adjusted_constraints == []


class TestDelete:
    def test_delete_updates_table_and_indices(self, catalog, manager):
        row = (1, "100", "555", "2016-06-01", "north")
        batch = manager.delete("call", [row])
        assert batch.deleted == 1
        index = catalog.index_for(catalog.schema.get("psi1"))
        # (555, north) still supported by call_id 7 (duplicate pair)
        assert ("555", "north") in index.fetch(("2016-06-01", "100"))
        manager.delete("call", [(7, "100", "555", "2016-06-01", "north")])
        assert ("555", "north") not in index.fetch(("2016-06-01", "100"))

    def test_delete_missing_row_rejected_and_restored(self, catalog, manager):
        before = list(catalog.database.table("call").rows)
        with pytest.raises(MaintenanceError):
            manager.delete(
                "call",
                [(1, "100", "555", "2016-06-01", "north"), (999, "x", "y", "2016-01-01", "z")],
            )
        assert sorted(catalog.database.table("call").rows) == sorted(before)

    def test_incremental_delete_equals_rebuild(self, catalog, manager):
        manager.delete("call", [(3, "101", "557", "2016-06-01", "east")])
        constraint = catalog.schema.get("psi1")
        rebuilt = AccessIndex(constraint, catalog.database.table("call"))
        assert catalog.index_for(constraint).snapshot() == rebuilt.snapshot()


class TestDriftMonitor:
    def test_keep_when_tight(self, catalog):
        monitor = DriftMonitor(catalog, slack=1.2, tighten_threshold=1000.0)
        report = monitor.report()
        assert all(s.kind == "keep" for s in report.suggestions)

    def test_tighten_when_bound_is_loose(self, catalog):
        # psi3 declares N=2000 but the data's max group is tiny
        monitor = DriftMonitor(catalog, slack=1.0, tighten_threshold=4.0)
        report = monitor.report()
        by_name = {s.constraint_name: s for s in report.suggestions}
        assert by_name["psi3"].kind == "tighten"
        assert by_name["psi3"].suggested_n < 2000

    def test_widen_after_unvalidated_growth(self, catalog):
        index = catalog.index_for(catalog.schema.get("psi2"))
        for i in range(13):
            index.insert_row(
                (900 + i, "300", f"q{i}", "2016-01-01", "2016-12-31", 2016),
                validate=False,
            )
        report = DriftMonitor(catalog).report()
        by_name = {s.constraint_name: s for s in report.suggestions}
        assert by_name["psi2"].kind == "widen"

    def test_apply_updates_schema(self, catalog):
        monitor = DriftMonitor(catalog, slack=1.0, tighten_threshold=4.0)
        changed = monitor.apply()
        assert "psi3" in changed
        assert catalog.schema.get("psi3").n < 2000

    def test_invalid_slack_rejected(self, catalog):
        with pytest.raises(ValueError):
            DriftMonitor(catalog, slack=0.5)

    def test_report_describe(self, catalog):
        text = DriftMonitor(catalog).report().describe()
        assert "psi1" in text
