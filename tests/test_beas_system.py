"""End-to-end tests of the BEAS facade: modes, budgets, schema management."""

import pytest

from repro import (
    AccessConstraint,
    BEAS,
    ExecutionMode,
)
from repro.errors import BudgetExceededError

from tests.conftest import EXAMPLE2_SQL


class TestModes:
    def test_covered_query_runs_bounded(self, ex1_beas):
        result = ex1_beas.execute(EXAMPLE2_SQL)
        assert result.mode is ExecutionMode.BOUNDED
        assert result.metrics.tuples_scanned == 0
        assert set(result.rows) == {("north",), ("south",), ("east",)}

    def test_uncovered_joins_take_partial_route(self, ex1_beas):
        # package has no usable seed here (year unbound), business covered
        sql = """
            SELECT DISTINCT p.pid FROM package p, business b
            WHERE b.type = 'bank' AND b.region = 'east' AND p.pnum = b.pnum
        """
        result = ex1_beas.execute(sql)
        assert result.mode is ExecutionMode.PARTIAL
        host = ex1_beas.host_engine().execute(sql)
        assert sorted(result.rows) == sorted(host.rows)

    def test_hopeless_query_runs_conventional(self, ex1_beas):
        sql = "SELECT DISTINCT region FROM call"
        result = ex1_beas.execute(sql)
        assert result.mode is ExecutionMode.CONVENTIONAL
        assert not result.decision.covered

    def test_partial_disabled_falls_back(self, ex1_beas):
        sql = """
            SELECT DISTINCT p.pid FROM package p, business b
            WHERE b.type = 'bank' AND b.region = 'east' AND p.pnum = b.pnum
        """
        result = ex1_beas.execute(sql, allow_partial=False)
        assert result.mode is ExecutionMode.CONVENTIONAL

    def test_describe_summary(self, ex1_beas):
        text = ex1_beas.execute(EXAMPLE2_SQL).describe()
        assert "bounded" in text and "fetched" in text


class TestBudget:
    def test_within_budget_runs_bounded(self, ex1_beas):
        result = ex1_beas.execute(EXAMPLE2_SQL, budget=13_000_000)
        assert result.mode is ExecutionMode.BOUNDED

    def test_over_budget_raises(self, ex1_beas):
        with pytest.raises(BudgetExceededError) as exc:
            ex1_beas.execute(EXAMPLE2_SQL, budget=100)
        assert exc.value.bound == 12_026_000
        assert exc.value.budget == 100

    def test_over_budget_approximation(self, ex1_beas):
        result = ex1_beas.execute(
            EXAMPLE2_SQL, budget=100, approximate_over_budget=True
        )
        assert result.mode is ExecutionMode.APPROXIMATE
        assert result.approximation is not None
        assert result.approximation.tuples_fetched <= 100
        exact = ex1_beas.execute(EXAMPLE2_SQL)
        assert set(result.rows) <= set(exact.rows)

    def test_check_reports_budget(self, ex1_beas):
        decision = ex1_beas.check(EXAMPLE2_SQL, budget=1)
        assert decision.covered and decision.within_budget is False


class TestExplain:
    def test_covered_explain_lists_fetches(self, ex1_beas):
        text = ex1_beas.explain(EXAMPLE2_SQL)
        assert "fetch[psi3]" in text
        assert "access bound" in text

    def test_uncovered_explain_shows_reasons_and_host_plan(self, ex1_beas):
        text = ex1_beas.explain("SELECT DISTINCT region FROM call")
        assert "NOT covered" in text
        assert "host plan" in text
        assert "Scan call" in text


class TestSchemaManagement:
    def test_register_enables_coverage(self, ex1_db):
        beas = BEAS(ex1_db)
        sql = (
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'"
        )
        assert not beas.check(sql).covered
        beas.register(
            AccessConstraint("call", ["pnum", "date"], ["recnum"], 500, name="c")
        )
        assert beas.check(sql).covered

    def test_unregister_disables_coverage(self, ex1_beas):
        assert ex1_beas.check(EXAMPLE2_SQL).covered
        ex1_beas.unregister("psi1")
        assert not ex1_beas.check(EXAMPLE2_SQL).covered

    def test_register_all(self, ex1_db):
        from tests.conftest import example1_access_schema

        beas = BEAS(ex1_db)
        beas.register_all(list(example1_access_schema()))
        assert beas.check(EXAMPLE2_SQL).covered

    def test_result_iteration_and_len(self, ex1_beas):
        result = ex1_beas.execute(EXAMPLE2_SQL)
        assert len(result) == len(list(result)) == len(result.to_set())


class TestAnalyzerIntegration:
    def test_performance_analysis(self, ex1_beas):
        analysis = ex1_beas.analyze_performance(EXAMPLE2_SQL)
        assert {c.profile for c in analysis.comparisons} == {
            "postgresql", "mysql", "mariadb",
        }

    def test_host_engine_profiles(self, ex1_beas):
        from repro import MARIADB

        default = ex1_beas.host_engine()
        assert default.profile.name == "postgresql"
        other = ex1_beas.host_engine(MARIADB)
        assert other.profile.name == "mariadb"
