"""Smoke tests: every shipped example must run to completion.

Run as subprocesses so each example is exercised exactly as a user would
run it (fresh interpreter, its own imports, printing to stdout).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(
    name: str, *args: str, strict_warnings: bool = True
) -> subprocess.CompletedProcess:
    """Run one example in a fresh interpreter.

    With ``strict_warnings`` (the default) the subprocess turns every
    DeprecationWarning into an error, so a migrated example that slips
    back onto a deprecated entry point fails here — pytest's own ``-W``
    flags cannot reach these child interpreters. The deliberate
    legacy-shim example opts out.
    """
    env = dict(os.environ)
    if strict_warnings:
        env["PYTHONWARNINGS"] = "error::DeprecationWarning"
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "access bound M = 12026000" in proc.stdout
        assert "host engine agrees" in proc.stdout

    def test_demo_walkthrough(self):
        proc = run_example("demo_walkthrough.py")
        assert proc.returncode == 0, proc.stderr
        assert "(A) BE Checker" in proc.stdout
        assert "(B) bounded plan" in proc.stdout
        assert "answers:" in proc.stdout

    def test_telecom_cdr(self):
        proc = run_example("telecom_cdr.py", "1")
        assert proc.returncode == 0, proc.stderr
        assert "covered: 10/11" in proc.stdout
        assert "performance analysis of Q1" in proc.stdout

    def test_discovery_and_maintenance(self):
        proc = run_example("discovery_and_maintenance.py")
        assert proc.returncode == 0, proc.stderr
        assert "access schema discovery" in proc.stdout
        assert "REJECT policy" in proc.stdout
        assert "drift monitor" in proc.stdout

    def test_approximation_budget(self):
        proc = run_example("approximation_budget.py")
        assert proc.returncode == 0, proc.stderr
        assert "strict mode refuses" in proc.stdout
        assert "guaranteed recall" in proc.stdout

    def test_session_lifecycle(self):
        proc = run_example("session_lifecycle.py")
        assert proc.returncode == 0, proc.stderr
        assert "checker runs for 4 new bindings: 1" in proc.stdout
        assert "decision=rebound" in proc.stdout
        assert "plan rebinds" in proc.stdout

    def test_prepared_serving(self):
        """The deliberate legacy-shim example: still works, and warns."""
        proc = run_example("prepared_serving.py", strict_warnings=False)
        assert proc.returncode == 0, proc.stderr
        assert "BEASDeprecationWarning" in proc.stderr
        assert "served_from_cache=True" in proc.stdout
        assert "packages-of-100 retained (cache hit: True)" in proc.stdout
        assert "serving stats:" in proc.stdout

    def test_columnar_executor(self):
        proc = run_example("columnar_executor.py")
        assert proc.returncode == 0, proc.stderr
        assert "one bounded plan, two executors" in proc.stdout
        assert "accounting are identical across modes" in proc.stdout
        assert "per-query selection through the serving layer" in proc.stdout

    def test_parallel_pool(self):
        proc = run_example("parallel_pool.py")
        assert proc.returncode == 0, proc.stderr
        assert "in-process vs engine pool" in proc.stdout
        assert "accounting are identical" in proc.stdout
        assert "version vector keys the worker snapshots" in proc.stdout
        assert "workers alive" in proc.stdout
        assert "pool closed" in proc.stdout

    def test_adaptive_routing(self):
        proc = run_example("adaptive_routing.py")
        assert proc.returncode == 0, proc.stderr
        assert "learned routing over one serving mix" in proc.stdout
        assert "routing: decisions=12" in proc.stdout
        assert "static override: routed_mode=''" in proc.stdout
        assert (
            "answers identical under learned and static routing"
            in proc.stdout
        )

    def test_async_serving(self):
        proc = run_example("async_serving.py")
        assert proc.returncode == 0, proc.stderr
        assert "concurrent clients" in proc.stdout
        assert "served from cache" in proc.stdout
        assert "per-shard stats" in proc.stdout
        assert "shard call:" in proc.stdout
        assert "maintenance queues:" in proc.stdout
