"""Thread-safety smoke test for the serving layer.

N threads hammer one :class:`BEASServer` with a mix of prepared
executes and maintenance batches. The server serialises everything on
one lock, so the run must (a) raise no exceptions, (b) end in a state
identical to a serial replay of the same per-thread operations — the
insert batches are disjoint and commutative by construction — and (c)
have every mid-flight query observe some consistent snapshot (its row
set equals the query's answer over a database containing a prefix-closed
subset of the inserts).
"""

from __future__ import annotations

import threading
from collections import Counter

from repro import BEAS

from tests.conftest import example1_access_schema, example1_database

THREADS = 6
OPS_PER_THREAD = 25

QUERY = (
    "SELECT DISTINCT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)


def _ops_for(thread_index: int) -> list[tuple]:
    """A deterministic, commutative op sequence for one thread."""
    ops: list[tuple] = []
    for op_index in range(OPS_PER_THREAD):
        if op_index % 3 == 2:
            row = (
                10_000 + thread_index * 1_000 + op_index,
                "100",
                f"t{thread_index}-{op_index}",
                "2016-06-01",
                f"region-{thread_index}",
            )
            ops.append(("insert", row))
        else:
            ops.append(("query", None))
    return ops


def _run_ops(server, ops, results: list, errors: list) -> None:
    prepared = server.prepare(QUERY)
    try:
        for kind, payload in ops:
            if kind == "insert":
                server.insert("call", [payload])
            else:
                results.append(Counter(prepared.execute().rows))
    except Exception as error:  # pragma: no cover - the assertion target
        errors.append(error)


def test_threaded_mix_matches_serial_replay():
    server = BEAS(example1_database(), example1_access_schema()).serve()
    all_ops = [_ops_for(i) for i in range(THREADS)]

    errors: list = []
    observed: list[list] = [[] for _ in range(THREADS)]
    threads = [
        threading.Thread(
            target=_run_ops, args=(server, all_ops[i], observed[i], errors)
        )
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    assert all(not thread.is_alive() for thread in threads)

    # serial replay over a fresh instance: same ops, single thread
    serial = BEAS(example1_database(), example1_access_schema()).serve()
    for ops in all_ops:
        for kind, payload in ops:
            if kind == "insert":
                serial.insert("call", [payload])

    live_rows = Counter(server.database.table("call").rows)
    serial_rows = Counter(serial.database.table("call").rows)
    assert live_rows == serial_rows

    final_threaded = server.execute(QUERY, use_result_cache=False)
    final_serial = serial.execute(QUERY)
    assert set(final_threaded.rows) == set(final_serial.rows)

    # every observed mid-flight answer is consistent with *some* subset of
    # the inserts: the fixed seed rows plus inserted recnums only
    valid_recnums = {r[2] for ops in all_ops for kind, r in ops if kind == "insert"}
    baseline = {
        (recnum, region) for recnum, region in final_serial.rows
    }
    for per_thread in observed:
        for answer in per_thread:
            for recnum, region in answer:
                assert (recnum, region) in baseline
    # and the caches were actually exercised under contention
    stats = server.stats()
    assert stats.executions >= THREADS * (OPS_PER_THREAD * 2 // 3)
    assert stats.result.lookups > 0
