"""Concurrency contract of the sharded serving layer.

Three families of checks over :class:`BEASServer` (sharded):

* **Linearizability by serial replay** — N writer threads (one per
  table, so per-table version numbers identify write prefixes) and M
  reader threads hammer one server. Every observed answer carries the
  table-version vector it was computed under
  (``metrics.table_versions``); the history is accepted iff (a) each
  observed version is one an actual write produced, (b) versions
  respect real time — a read that *started* after a write *completed*
  sees at least that write, and never a write that had not started by
  the time the read finished — and (c) per reader, observed versions
  are monotone. The final state must equal a serial replay of all
  per-thread operations.

* **Non-blocking maintenance** — a long maintenance batch on ``call``
  must not stall concurrent reads of ``package`` beyond a small bound
  (the per-table write lock is the point of the sharded design).

* **Deadlock canary** — a mixed workload of multi-shard joins,
  single-table reads, maintenance, and access-schema changes finishes
  within a hard timeout (ordered acquisition means no lock cycles).

* **Stats-snapshot atomicity** — ``BEASServer.stats()`` polled during a
  subsumption-heavy workload must never report torn totals. Within one
  request the bump order is executions (admin lock), then the shard's
  result-cache hit/miss, then the subsumption/rebind counters (admin
  lock again); a snapshot that reads all admin counters in a single
  block can therefore observe ``subsumed_hits > result.misses`` or
  ``hits + misses > executions``. ``stats()`` reads the counter
  families in reverse bump order, and this suite holds it to that.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from repro import BEAS, AccessConstraint

from tests.conftest import example1_access_schema, example1_database
from tests.test_subsumption_differential import build_events_database, events_access

WRITERS = {"call": 0, "package": 1, "business": 2}
READERS = 4
WRITES_PER_THREAD = 12
READS_PER_THREAD = 30

QUERIES = {
    "call": (
        "SELECT DISTINCT recnum, region FROM call "
        "WHERE pnum = '100' AND date = '2016-06-01'"
    ),
    "package": "SELECT pid FROM package WHERE pnum = '100' AND year = 2016",
    "business": (
        "SELECT business.pnum FROM business "
        "WHERE business.type = 'bank' AND business.region = 'east'"
    ),
    "join": (
        "SELECT call.region, business.type FROM call, business "
        "WHERE call.pnum = business.pnum AND call.date = '2016-06-01'"
    ),
}


def _write_rows(table: str, thread: int, op: int) -> list[tuple]:
    """Commutative, key-unique rows for one write batch."""
    base = 50_000 + thread * 1_000 + op
    if table == "call":
        return [(base, "100", f"w{thread}-{op}", "2016-06-01", "storm")]
    if table == "package":
        # distinct pnum per batch: psi2 bounds the packages of one
        # (pnum, year), so the writer must spread its key space
        return [
            (base, f"55{thread}{op:02d}", f"p{thread}-{op}",
             "2016-02-01", "2016-11-30", 2016)
        ]
    return [(f"9{thread}{op:02d}", "shop", "harbor")]


class _WriterLog:
    """Per-table write history: (version_after, start, end) per batch."""

    def __init__(self, initial_version: int):
        self.initial_version = initial_version
        self.batches: list[tuple[int, float, float]] = []

    def versions(self) -> set[int]:
        return {self.initial_version} | {v for v, _, _ in self.batches}

    def min_version_visible_at(self, instant: float) -> int:
        """Writes completed before ``instant`` must be visible."""
        done = [v for v, _, end in self.batches if end < instant]
        return max(done, default=self.initial_version)

    def max_version_started_by(self, instant: float) -> int:
        started = [v for v, start, _ in self.batches if start < instant]
        return max(started, default=self.initial_version)


def test_linearizable_history_and_serial_replay():
    server = BEAS(example1_database(), example1_access_schema()).serve()
    logs = {
        table: _WriterLog(server.database.table(table).version)
        for table in WRITERS
    }
    errors: list = []
    observations: list[list] = [[] for _ in range(READERS)]
    barrier = threading.Barrier(len(WRITERS) + READERS)

    def writer(table: str, index: int) -> None:
        try:
            barrier.wait(timeout=30)
            for op in range(WRITES_PER_THREAD):
                start = time.perf_counter()
                batch = server.insert(table, _write_rows(table, index, op))
                end = time.perf_counter()
                logs[table].batches.append((batch.table_version, start, end))
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    def reader(index: int) -> None:
        try:
            prepared = {
                name: server.prepare(sql) for name, sql in QUERIES.items()
            }
            barrier.wait(timeout=30)
            names = list(QUERIES)
            for op in range(READS_PER_THREAD):
                name = names[(index + op) % len(names)]
                start = time.perf_counter()
                result = prepared[name].execute()
                end = time.perf_counter()
                observations[index].append(
                    (dict(result.metrics.table_versions), start, end)
                )
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(table, index))
        for table, index in WRITERS.items()
    ] + [threading.Thread(target=reader, args=(i,)) for i in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert all(not thread.is_alive() for thread in threads)

    # (a) + (b): every observation is a real write prefix, placed in real time
    for per_reader in observations:
        last_seen: dict[str, int] = {}
        for versions, start, end in per_reader:
            for table, version in versions.items():
                log = logs[table]
                assert version in log.versions(), (table, version)
                assert version >= log.min_version_visible_at(start), (
                    "read missed a write that completed before it started",
                    table, version, start,
                )
                assert version <= log.max_version_started_by(end), (
                    "read observed a write from its future",
                    table, version, end,
                )
                # (c) per-session monotonicity
                assert version >= last_seen.get(table, 0), (table, version)
                last_seen[table] = version

    # final state == serial replay of the same per-thread operations
    replay = BEAS(example1_database(), example1_access_schema()).serve()
    for table, index in WRITERS.items():
        for op in range(WRITES_PER_THREAD):
            replay.insert(table, _write_rows(table, index, op))
    for table in WRITERS:
        live = Counter(server.database.table(table).rows)
        replayed = Counter(replay.database.table(table).rows)
        assert live == replayed, table
    for sql in QUERIES.values():
        concurrent_answer = server.execute(sql, use_result_cache=False)
        serial_answer = replay.execute(sql, use_result_cache=False)
        assert Counter(concurrent_answer.rows) == Counter(serial_answer.rows)

    # the shards were genuinely exercised in parallel
    stats = server.stats()
    assert stats.executions >= READERS * READS_PER_THREAD
    assert stats.shards["call"].maintenance_batches == WRITES_PER_THREAD
    assert stats.shards["package"].maintenance_batches == WRITES_PER_THREAD


def test_maintenance_on_one_table_does_not_block_reads_of_another():
    """Reads of ``package`` proceed while a big batch lands in ``call``."""
    server = BEAS(example1_database(), example1_access_schema()).serve()
    package_query = server.prepare(QUERIES["package"])
    package_query.execute()
    package_query.execute()  # admitted: steady-state read path

    # a deliberately heavy batch: many distinct (pnum, date) groups so the
    # REJECT validation walks every row without violating psi1's bound
    big_batch = [
        (100_000 + i, f"6{i % 977:03d}", f"b{i}", "2016-06-01", "delta")
        for i in range(4_000)
    ]
    started = threading.Event()
    duration: list[float] = []

    def maintain() -> None:
        started.set()
        start = time.perf_counter()
        server.insert("call", big_batch)
        duration.append(time.perf_counter() - start)

    writer = threading.Thread(target=maintain)
    read_latencies: list[float] = []
    overlapped = 0
    writer.start()
    started.wait(timeout=10)
    while writer.is_alive():
        start = time.perf_counter()
        result = package_query.execute()
        read_latencies.append(time.perf_counter() - start)
        if writer.is_alive():
            overlapped += 1
        assert result.rows  # sanity: the answer itself is unaffected
    writer.join(timeout=60)
    assert duration, "maintenance thread did not finish"

    assert overlapped >= 3, (
        f"only {overlapped} reads overlapped the batch "
        f"(batch took {duration[0] * 1000:.1f} ms) — too fast to judge"
    )
    bound = max(0.05, duration[0] / 4)
    assert max(read_latencies) < bound, (
        f"a read of `package` stalled {max(read_latencies) * 1000:.1f} ms "
        f"behind maintenance on `call` ({duration[0] * 1000:.1f} ms)"
    )


def test_mixed_workload_deadlock_canary():
    """Joins (multi-shard read locks), maintenance (write locks), and
    schema changes (schema write lock) interleave without deadlock."""
    server = BEAS(example1_database(), example1_access_schema()).serve()
    errors: list = []
    stop = threading.Event()

    def querier(index: int) -> None:
        try:
            names = list(QUERIES)
            op = 0
            while not stop.is_set():
                server.execute(QUERIES[names[(index + op) % len(names)]])
                op += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def maintainer() -> None:
        try:
            op = 0
            while not stop.is_set():
                rows = _write_rows("call", 9, op)
                server.insert("call", rows)
                server.delete("call", rows)
                op += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def schema_churn() -> None:
        try:
            toggle = AccessConstraint(
                "call", ["region"], ["recnum"], 5_000, name="canary"
            )
            while not stop.is_set():
                server.register(toggle, validate=False)
                server.unregister("canary")
                time.sleep(0.002)
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = (
        [threading.Thread(target=querier, args=(i,)) for i in range(3)]
        + [threading.Thread(target=maintainer)]
        + [threading.Thread(target=schema_churn)]
    )
    for thread in threads:
        thread.start()
    time.sleep(1.0)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert all(not thread.is_alive() for thread in threads), "deadlock"


def test_stats_snapshot_is_never_torn_under_subsume_load():
    """``stats()`` must hold the counter invariants while requests land.

    Workload shape: one wide query is cached eagerly, then reader
    threads hammer a strictly narrower binding with
    ``result_reuse="subsume"``. Subsumed answers are not re-admitted,
    so *every* narrow request is one execution + one exact result-cache
    miss + one subsumed hit — the densest possible traffic across the
    three counter families, each bumped at a different point of the
    request. A concurrent poller asserts the cross-family invariants on
    every snapshot; a stats() that reads the admin counters in one block
    (the pre-fix behaviour) fails here with ``subsumed_hits >
    result.misses`` within a few hundred polls. The interpreter switch
    interval is cranked down for the duration so a context switch lands
    inside the handful of bytecodes between the shard sweep and the
    admin read often enough to *judge* the read order, not just
    exercise it.
    """
    import sys

    server = BEAS(build_events_database(), events_access()).serve(
        result_admission="always"
    )
    select = "SELECT event_id, day, region, score FROM events WHERE "
    wide = f"{select}pnum = 'p1' AND day >= 10 AND day <= 80 ORDER BY day"
    narrow = f"{select}pnum = 'p1' AND day >= 20 AND day <= 60 ORDER BY day"
    server.execute(wide, result_reuse="subsume")  # cached source
    probe = server.execute(narrow, result_reuse="subsume")
    assert probe.metrics.tuples_fetched == 0, "workload is not subsuming"

    errors: list = []
    stop = threading.Event()
    polls = [0]

    def reader() -> None:
        try:
            while not stop.is_set():
                server.execute(narrow, result_reuse="subsume")
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    def poller() -> None:
        try:
            while not stop.is_set():
                stats = server.stats()
                polls[0] += 1
                assert stats.subsumed_hits <= stats.result.misses, (
                    "torn snapshot: subsumed hits ahead of the misses "
                    "that produced them",
                    stats.subsumed_hits, stats.result.misses,
                )
                assert (
                    stats.result.hits + stats.result.misses
                    <= stats.executions
                ), (
                    "torn snapshot: cache traffic ahead of executions",
                    stats.result.hits, stats.result.misses, stats.executions,
                )
        except Exception as error:  # pragma: no cover - assertion target
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(4)] + [
        threading.Thread(target=poller)
    ]
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        for thread in threads:
            thread.start()
        time.sleep(1.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    finally:
        sys.setswitchinterval(switch_interval)
    assert not errors, errors
    assert all(not thread.is_alive() for thread in threads)
    assert polls[0] >= 100, f"only {polls[0]} stats polls - nothing judged"

    final = server.stats()
    assert final.subsumed_hits > 0
    assert final.subsumed_hits <= final.result.misses
    assert final.result.hits + final.result.misses <= final.executions
