"""Resource-bounded approximation tests: soundness, budget, recall bound."""

import pytest

from repro import (
    ASCatalog,
    BoundedApproximator,
    BoundedEvaluabilityChecker,
    ConventionalEngine,
)
from repro.errors import PlanningError

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
    example1_schema,
)


@pytest.fixture
def setup():
    db = example1_database()
    access = example1_access_schema()
    catalog = ASCatalog(db, access)
    checker = BoundedEvaluabilityChecker(db.schema, access)
    return db, catalog, checker


def plan_for(checker, sql):
    decision = checker.check(sql)
    assert decision.covered, decision.reasons
    return decision.plan


class TestSoundness:
    SQL = (
        "SELECT DISTINCT recnum, region FROM call "
        "WHERE pnum IN ('100', '101', '102', '103') AND date = '2016-06-01'"
    )

    def test_generous_budget_is_exact(self, setup):
        db, catalog, checker = setup
        plan = plan_for(checker, self.SQL)
        result = BoundedApproximator(catalog).execute(plan, budget=10_000)
        exact = ConventionalEngine(db).execute(self.SQL)
        assert result.complete
        assert result.recall_lower_bound == 1.0
        assert set(result.rows) == set(exact.rows)

    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 5])
    def test_answers_are_subset_of_exact(self, setup, budget):
        db, catalog, checker = setup
        plan = plan_for(checker, self.SQL)
        result = BoundedApproximator(catalog).execute(plan, budget=budget)
        exact = set(ConventionalEngine(db).execute(self.SQL).rows)
        assert set(result.rows) <= exact

    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 5, 100])
    def test_budget_never_exceeded(self, setup, budget):
        _, catalog, checker = setup
        plan = plan_for(checker, self.SQL)
        result = BoundedApproximator(catalog).execute(plan, budget=budget)
        assert result.tuples_fetched <= budget

    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 5, 100])
    def test_recall_bound_is_valid(self, setup, budget):
        """The deterministic guarantee: true recall >= reported bound."""
        db, catalog, checker = setup
        plan = plan_for(checker, self.SQL)
        result = BoundedApproximator(catalog).execute(plan, budget=budget)
        exact = set(ConventionalEngine(db).execute(self.SQL).rows)
        true_recall = len(set(result.rows)) / len(exact) if exact else 1.0
        assert true_recall >= result.recall_lower_bound - 1e-12

    def test_truncated_flags_incomplete(self, setup):
        _, catalog, checker = setup
        plan = plan_for(checker, self.SQL)
        result = BoundedApproximator(catalog).execute(plan, budget=1)
        assert not result.complete
        assert result.missed_bound > 0
        assert "approximate" in result.describe()


class TestMultiFetch:
    def test_example2_truncation_sound(self, setup):
        db, catalog, checker = setup
        plan = plan_for(checker, EXAMPLE2_SQL)
        exact = set(ConventionalEngine(db).execute(EXAMPLE2_SQL).rows)
        for budget in (0, 1, 2, 4, 8, 1000):
            result = BoundedApproximator(catalog).execute(plan, budget=budget)
            assert set(result.rows) <= exact
            assert result.tuples_fetched <= budget

    def test_monotone_in_budget(self, setup):
        _, catalog, checker = setup
        plan = plan_for(checker, EXAMPLE2_SQL)
        sizes = [
            len(BoundedApproximator(catalog).execute(plan, budget=b).rows)
            for b in (0, 2, 4, 8, 1000)
        ]
        assert sizes == sorted(sizes)


class TestRejections:
    def test_aggregates_rejected(self, setup):
        _, catalog, checker = setup
        plan = plan_for(
            checker,
            "SELECT COUNT(DISTINCT recnum) FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'",
        )
        with pytest.raises(PlanningError):
            BoundedApproximator(catalog).execute(plan, budget=10)

    def test_negative_budget_rejected(self, setup):
        _, catalog, checker = setup
        plan = plan_for(
            checker,
            "SELECT DISTINCT recnum FROM call "
            "WHERE pnum = '100' AND date = '2016-06-01'",
        )
        with pytest.raises(PlanningError):
            BoundedApproximator(catalog).execute(plan, budget=-1)
