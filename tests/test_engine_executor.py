"""Conventional engine tests: operators, profiles, end-to-end SQL."""

import pytest

from repro import (
    ConventionalEngine,
    Database,
    DatabaseSchema,
    DataType,
    MARIADB,
    MYSQL,
    POSTGRESQL,
    TableSchema,
)
from repro.engine.profiles import EngineProfile
from repro.errors import ExecutionError


@pytest.fixture
def db() -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "emp",
                [
                    ("id", DataType.INT),
                    ("name", DataType.STRING),
                    ("dept", DataType.STRING),
                    ("salary", DataType.INT),
                    ("boss", DataType.STRING),
                ],
                keys=[("id",)],
            ),
            TableSchema(
                "dept",
                [("name", DataType.STRING), ("region", DataType.STRING)],
                keys=[("name",)],
            ),
        ]
    )
    database = Database(schema)
    emps = [
        (1, "ann", "eng", 120, "dan"),
        (2, "bob", "eng", 100, "ann"),
        (3, "cat", "ops", 90, "dan"),
        (4, "dan", "mgmt", 150, None),
        (5, "eve", "ops", 90, "cat"),
        (6, "fay", None, 80, "dan"),
    ]
    depts = [("eng", "east"), ("ops", "west"), ("hr", "east")]
    for row in emps:
        database.insert("emp", row)
    for row in depts:
        database.insert("dept", row)
    return database


@pytest.fixture
def engine(db) -> ConventionalEngine:
    return ConventionalEngine(db)


class TestScanFilterProject:
    def test_select_all(self, engine):
        assert len(engine.execute("SELECT * FROM emp")) == 6

    def test_filter_equality(self, engine):
        result = engine.execute("SELECT name FROM emp WHERE dept = 'eng'")
        assert sorted(result.rows) == [("ann",), ("bob",)]

    def test_filter_null_never_matches(self, engine):
        result = engine.execute("SELECT name FROM emp WHERE dept = 'missing'")
        assert result.rows == []

    def test_is_null_filter(self, engine):
        result = engine.execute("SELECT name FROM emp WHERE dept IS NULL")
        assert result.rows == [("fay",)]

    def test_computed_output(self, engine):
        result = engine.execute("SELECT salary * 2 AS double FROM emp WHERE id = 1")
        assert result.rows == [(240,)] and result.columns == ["double"]

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT boss FROM emp WHERE boss = 'dan'")
        assert result.rows == [("dan",)]

    def test_metrics_scanned(self, engine):
        result = engine.execute("SELECT name FROM emp")
        assert result.metrics.tuples_scanned == 6


class TestJoins:
    JOIN_SQL = (
        "SELECT e.name, d.region FROM emp e JOIN dept d ON e.dept = d.name "
        "ORDER BY e.name"
    )
    EXPECTED = [
        ("ann", "east"),
        ("bob", "east"),
        ("cat", "west"),
        ("eve", "west"),
    ]

    @pytest.mark.parametrize("algorithm", ["hash", "sort_merge", "block_nested"])
    def test_join_algorithms_agree(self, db, algorithm):
        profile = EngineProfile(name=f"test-{algorithm}", join_algorithm=algorithm)
        engine = ConventionalEngine(db, profile)
        assert engine.execute(self.JOIN_SQL).rows == self.EXPECTED

    def test_null_keys_never_join(self, engine):
        # fay has dept NULL: she must not appear even with a NULL dept row
        result = engine.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name"
        )
        assert ("fay",) not in result.rows

    def test_self_join(self, engine):
        result = engine.execute(
            "SELECT e.name, b.name FROM emp e, emp b "
            "WHERE e.boss = b.name AND b.dept = 'mgmt' ORDER BY e.name"
        )
        assert result.rows == [("ann", "dan"), ("cat", "dan"), ("fay", "dan")]

    def test_cross_join(self, engine):
        result = engine.execute("SELECT e.id FROM emp e CROSS JOIN dept d")
        assert len(result.rows) == 18

    def test_implicit_cross_join(self, engine):
        result = engine.execute("SELECT e.id FROM emp e, dept d")
        assert len(result.rows) == 18

    def test_join_with_extra_filter(self, engine):
        result = engine.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name "
            "WHERE d.region = 'east' AND e.salary > 100"
        )
        assert result.rows == [("ann",)]


class TestAggregates:
    def test_count_star(self, engine):
        assert engine.execute("SELECT COUNT(*) FROM emp").rows == [(6,)]

    def test_count_column_skips_nulls(self, engine):
        assert engine.execute("SELECT COUNT(dept) FROM emp").rows == [(5,)]

    def test_count_distinct(self, engine):
        assert engine.execute("SELECT COUNT(DISTINCT dept) FROM emp").rows == [(3,)]

    def test_sum_avg_min_max(self, engine):
        result = engine.execute(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        )
        assert result.rows == [(630, 105.0, 80, 150)]

    def test_group_by(self, engine):
        result = engine.execute(
            "SELECT dept, COUNT(*) AS c FROM emp GROUP BY dept ORDER BY c DESC, dept"
        )
        assert result.rows == [
            ("eng", 2),
            ("ops", 2),
            (None, 1),
            ("mgmt", 1),
        ]

    def test_having(self, engine):
        result = engine.execute(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 1 "
            "ORDER BY dept"
        )
        assert result.rows == [("eng", 2), ("ops", 2)]

    def test_scalar_aggregate_on_empty_input(self, engine):
        result = engine.execute("SELECT COUNT(*), SUM(salary) FROM emp WHERE id = 99")
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_yields_no_rows(self, engine):
        result = engine.execute(
            "SELECT dept, COUNT(*) FROM emp WHERE id = 99 GROUP BY dept"
        )
        assert result.rows == []

    def test_aggregate_arithmetic(self, engine):
        result = engine.execute("SELECT MAX(salary) - MIN(salary) FROM emp")
        assert result.rows == [(70,)]

    def test_sum_distinct(self, engine):
        # salaries: 120,100,90,150,90,80 -> distinct 120,100,90,150,80 = 540
        assert engine.execute("SELECT SUM(DISTINCT salary) FROM emp").rows == [(540,)]


class TestOrderLimit:
    def test_order_by_desc(self, engine):
        result = engine.execute("SELECT name FROM emp ORDER BY salary DESC, name")
        assert result.rows[0] == ("dan",)

    def test_order_by_output_alias(self, engine):
        result = engine.execute(
            "SELECT salary * 2 AS d FROM emp ORDER BY d LIMIT 1"
        )
        assert result.rows == [(160,)]

    def test_nulls_first_ascending(self, engine):
        result = engine.execute("SELECT dept FROM emp ORDER BY dept LIMIT 1")
        assert result.rows == [(None,)]

    def test_limit_offset(self, engine):
        result = engine.execute("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")
        assert result.rows == [(3,), (4,)]

    def test_limit_zero(self, engine):
        assert engine.execute("SELECT id FROM emp LIMIT 0").rows == []


class TestSetOperations:
    def test_union_dedupes(self, engine):
        result = engine.execute(
            "SELECT dept FROM emp WHERE dept = 'eng' UNION SELECT name FROM dept"
        )
        assert sorted(result.rows) == [("eng",), ("hr",), ("ops",)]

    def test_union_all_keeps_duplicates(self, engine):
        result = engine.execute(
            "SELECT dept FROM emp WHERE dept = 'eng' UNION ALL SELECT name FROM dept"
        )
        assert len(result.rows) == 5

    def test_intersect(self, engine):
        result = engine.execute(
            "SELECT DISTINCT dept FROM emp INTERSECT SELECT name FROM dept"
        )
        assert sorted(result.rows) == [("eng",), ("ops",)]

    def test_except(self, engine):
        result = engine.execute(
            "SELECT name FROM dept EXCEPT SELECT DISTINCT dept FROM emp"
        )
        assert result.rows == [("hr",)]

    def test_arity_mismatch_rejected(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT id, name FROM emp UNION SELECT name FROM dept")


class TestProfiles:
    def test_all_profiles_same_answers(self, db):
        sql = (
            "SELECT d.region, COUNT(*) AS c FROM emp e JOIN dept d "
            "ON e.dept = d.name GROUP BY d.region ORDER BY d.region"
        )
        results = [
            ConventionalEngine(db, profile).execute(sql).rows
            for profile in (POSTGRESQL, MYSQL, MARIADB)
        ]
        assert results[0] == results[1] == results[2]

    def test_invalid_join_algorithm_rejected(self):
        with pytest.raises(ValueError):
            EngineProfile(name="bad", join_algorithm="nested_hash_loop")

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            EngineProfile(name="bad", row_overhead=-1)

    def test_explain_contains_scan(self, engine):
        assert "Scan emp" in engine.explain("SELECT name FROM emp")

    def test_statistics_cache_invalidation(self, db):
        engine = ConventionalEngine(db)
        stats1 = engine.statistics()["emp"].row_count
        db.insert("emp", (7, "gil", "eng", 70, "ann"))
        stats2 = engine.statistics()["emp"].row_count
        assert (stats1, stats2) == (6, 7)
