"""Unit tests for repro.storage (table, database, CSV round-trips, codec)."""

import io
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.catalog.types import DataType
from repro.errors import StorageError, TypeMismatchError, UnknownTableError
from repro.storage.codec import (
    CANONICAL_NAN,
    canonical_key,
    canonical_value,
    decode_value,
    encode_value,
    is_nan,
)
from repro.storage.csvio import dump_csv, load_csv, table_from_csv_text, table_to_csv_text
from repro.storage.database import Database
from repro.storage.table import Table


def schema() -> TableSchema:
    return TableSchema(
        "t",
        [
            ("i", DataType.INT),
            ("f", DataType.FLOAT),
            ("s", DataType.STRING),
            ("b", DataType.BOOL),
            ("d", DataType.DATE),
        ],
    )


class TestTable:
    def test_insert_and_len(self):
        table = Table(schema())
        table.insert((1, 1.5, "x", True, "2016-06-01"))
        assert len(table) == 1

    def test_insert_wrong_arity(self):
        with pytest.raises(StorageError):
            Table(schema()).insert((1, 2.0))

    def test_insert_wrong_type(self):
        with pytest.raises(TypeMismatchError):
            Table(schema()).insert(("one", 1.5, "x", True, "2016-06-01"))

    def test_insert_coerce(self):
        table = Table(schema())
        stored = table.insert(("3", "1.5", 7, "yes", "2016-6-1"), coerce=True)
        assert stored == (3, 1.5, "7", True, "2016-06-01")

    def test_insert_many(self):
        table = Table(schema())
        n = table.insert_many(
            [(1, 1.0, "a", False, "2016-01-01"), (2, 2.0, "b", True, "2016-01-02")]
        )
        assert n == 2 and len(table) == 2

    def test_delete_predicate(self):
        table = Table(schema())
        table.insert((1, 1.0, "a", False, "2016-01-01"))
        table.insert((2, 2.0, "b", True, "2016-01-02"))
        removed = table.delete(lambda row: row[0] == 1)
        assert len(removed) == 1 and len(table) == 1

    def test_delete_rows_bag_semantics(self):
        table = Table(schema())
        row = (1, 1.0, "a", False, "2016-01-01")
        table.insert(row)
        table.insert(row)
        removed = table.delete_rows([row])
        assert len(removed) == 1 and len(table) == 1

    def test_project_distinct_preserves_order(self):
        table = Table(schema())
        table.insert((1, 1.0, "a", False, "2016-01-01"))
        table.insert((2, 1.0, "a", False, "2016-01-01"))
        table.insert((1, 2.0, "b", False, "2016-01-01"))
        assert table.project(["i"], distinct=True) == [(1,), (2,)]

    def test_column_values(self):
        table = Table(schema())
        table.insert((1, 1.0, "a", False, "2016-01-01"))
        assert table.column_values("s") == ["a"]

    def test_nulls_allowed(self):
        table = Table(schema())
        table.insert((None, None, None, None, None))
        assert table.rows[0] == (None,) * 5


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table(schema())
        assert db.table("t").schema.name == "t"

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Database().table("missing")

    def test_duplicate_rejected(self):
        db = Database()
        db.create_table(schema())
        with pytest.raises(StorageError):
            db.create_table(schema())

    def test_from_database_schema(self):
        db = Database(DatabaseSchema([schema()]))
        assert "t" in db

    def test_total_rows(self):
        db = Database(DatabaseSchema([schema()]))
        db.insert("t", (1, 1.0, "a", False, "2016-01-01"))
        assert db.total_rows() == 1

    def test_statistics(self):
        db = Database(DatabaseSchema([schema()]))
        db.insert("t", (1, 1.0, "a", False, "2016-01-01"))
        assert db.statistics()["t"].row_count == 1


class TestCSV:
    def test_round_trip_basic(self):
        table = Table(schema())
        table.insert((1, 1.5, "hello, world", True, "2016-06-01"))
        table.insert((None, None, "", False, None))
        text = table_to_csv_text(table)
        back = table_from_csv_text(text)
        assert back.rows == table.rows
        assert back.schema.column_names == table.schema.column_names

    def test_null_vs_empty_string(self):
        table = Table(schema())
        table.insert((1, 1.0, "", True, "2016-01-01"))
        table.insert((2, 2.0, None, True, "2016-01-01"))
        back = table_from_csv_text(table_to_csv_text(table))
        assert back.rows[0][2] == ""
        assert back.rows[1][2] is None

    def test_load_with_explicit_schema(self):
        text = "i,f,s,b,d\n1,1.0,x,true,2016-01-01\n"
        table = load_csv(io.StringIO(text), schema())
        assert table.rows == [(1, 1.0, "x", True, "2016-01-01")]

    def test_header_mismatch_rejected(self):
        text = "x,y\n1,2\n"
        with pytest.raises(StorageError):
            load_csv(io.StringIO(text), schema())

    def test_empty_input_rejected(self):
        with pytest.raises(StorageError):
            load_csv(io.StringIO(""))

    def test_missing_type_suffix_rejected(self):
        with pytest.raises(StorageError):
            load_csv(io.StringIO("plain\n1\n"))

    def test_bad_arity_row_rejected(self):
        text = "i:int\n1,2\n"
        with pytest.raises(StorageError):
            load_csv(io.StringIO(text))

    def test_file_round_trip(self, tmp_path):
        table = Table(schema())
        table.insert((7, 2.5, "file", False, "2016-12-31"))
        path = tmp_path / "t.csv"
        dump_csv(table, path)
        assert load_csv(path).rows == table.rows

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-10**6, 10**6)),
                st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)),
                st.one_of(st.none(), st.text(max_size=20)),
                st.one_of(st.none(), st.booleans()),
                st.one_of(st.none(), st.just("2016-06-01")),
            ),
            max_size=20,
        )
    )
    def test_round_trip_property(self, rows):
        """dump -> load is the identity on arbitrary typed rows."""
        table = Table(schema())
        for row in rows:
            table.insert(row)
        back = table_from_csv_text(table_to_csv_text(table))
        assert back.rows == table.rows

    @pytest.mark.parametrize(
        "tricky", ['""', '"', '"x"', '""""', '"" ', "plain"]
    )
    def test_quote_shaped_strings_round_trip(self, tricky):
        """Regression: a literal string that looks like the quoted-empty
        sentinel (e.g. '""') must not decode to the empty string."""
        table = Table(schema())
        table.insert((1, None, tricky, None, None))
        back = table_from_csv_text(table_to_csv_text(table))
        assert back.rows == table.rows


class TestFloatSpecialsCodec:
    """Regressions for the shared storage codec (repro.storage.codec).

    The CSV, WAL, and mmap formats all encode values through this one
    module; these cases pin the float-special behaviour the serialization
    sweep fixed — NaN canonicalisation, inf round trips, and NULL vs NaN
    staying distinct at every boundary.
    """

    def test_encode_specials(self):
        assert encode_value(float("nan")) == "nan"
        assert encode_value(float("inf")) == "inf"
        assert encode_value(float("-inf")) == "-inf"
        assert encode_value(None) == ""

    def test_decode_nan_is_canonical(self):
        """Every decoded NaN is the ONE canonical object, so bucket keys
        built from round-tripped rows match by identity."""
        decoded = decode_value("nan", DataType.FLOAT)
        assert decoded is CANONICAL_NAN
        assert decode_value("NaN", DataType.FLOAT) is CANONICAL_NAN

    def test_decode_inf_round_trip(self):
        assert decode_value("inf", DataType.FLOAT) == math.inf
        assert decode_value("-inf", DataType.FLOAT) == -math.inf
        assert decode_value("", DataType.FLOAT) is None

    def test_is_nan_excludes_non_floats(self):
        assert is_nan(float("nan"))
        assert not is_nan(None)
        assert not is_nan("nan")
        assert not is_nan(1.0)
        assert not is_nan(True)

    def test_canonical_value_and_key(self):
        fresh = float("nan")
        assert fresh is not CANONICAL_NAN
        assert canonical_value(fresh) is CANONICAL_NAN
        assert canonical_value(2.5) == 2.5
        assert canonical_value(None) is None
        key = canonical_key(("k", fresh, None, 1.0))
        assert key[1] is CANONICAL_NAN
        # canonical keys from independently parsed NaNs compare equal
        # (tuple equality short-circuits on identity)
        assert key == canonical_key(("k", float("nan"), None, 1.0))

    def test_csv_round_trip_preserves_specials(self):
        """NaN/inf survive dump -> load, and the reloaded NaN is the
        canonical object — not a fresh unequal one."""
        table = Table(schema())
        table.insert((1, float("nan"), "a", None, None))
        table.insert((2, float("inf"), "b", None, None))
        table.insert((3, float("-inf"), "c", None, None))
        table.insert((4, None, "d", None, None))
        back = table_from_csv_text(table_to_csv_text(table))
        assert back.rows[0][1] is CANONICAL_NAN
        assert back.rows[1][1] == math.inf
        assert back.rows[2][1] == -math.inf
        assert back.rows[3][1] is None

    def test_null_never_conflated_with_nan(self):
        """3VL: NULL and NaN are different UNKNOWNs — the codec must not
        collapse one into the other in either direction."""
        assert encode_value(None) != encode_value(float("nan"))
        assert decode_value("", DataType.FLOAT) is None
        assert is_nan(decode_value("nan", DataType.FLOAT))

    @settings(max_examples=50, deadline=None)
    @given(
        value=st.one_of(
            st.none(),
            st.floats(width=64),  # includes NaN and both infinities
        )
    )
    def test_float_codec_property(self, value):
        """encode -> decode is the identity on every float (NaN modulo
        canonicalisation) and on NULL."""
        back = decode_value(encode_value(value), DataType.FLOAT)
        if value is None:
            assert back is None
        elif math.isnan(value):
            assert back is CANONICAL_NAN
        else:
            assert back == value
