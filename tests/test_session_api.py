"""The unified Session/Query/Decision/Result lifecycle (repro.beas.session).

Covers the redesigned public API: construction, the query lifecycle,
the single options-precedence chain (call > Query > Session >
EngineProfile > environment), engine-pinned option guards, result
shapes, deprecation shims, and the construction-time validation
satellites (executor strings, failed pool spawns).
"""

from __future__ import annotations

import warnings

import pytest

from repro import (
    BEAS,
    AccessConstraint,
    ExecutionMode,
    ExecutionOptions,
    Session,
)
from repro.beas import system as beas_system
from repro.engine.profiles import EngineProfile
from repro.errors import (
    BEASDeprecationWarning,
    BEASError,
    BudgetExceededError,
)

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
)

CALL_SQL = (
    "SELECT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)


@pytest.fixture
def session():
    with Session(example1_database(), example1_access_schema()) as s:
        yield s


# --------------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------------- #
class TestConstruction:
    def test_database_xor_beas(self):
        db = example1_database()
        with pytest.raises(BEASError, match="exactly one"):
            Session()
        with pytest.raises(BEASError, match="exactly one"):
            Session(db, beas=BEAS(db))

    def test_adopting_an_engine(self):
        engine = BEAS(example1_database(), example1_access_schema())
        with Session(beas=engine) as s:
            assert s.beas is engine
            assert len(s.query(CALL_SQL).run()) == 2
        # adopted engines are not closed by the session
        assert engine.execute is not None

    def test_beas_session_helper(self):
        engine = BEAS(example1_database(), example1_access_schema())
        s = engine.session()
        assert s.beas is engine
        assert s.query(CALL_SQL).run().mode is ExecutionMode.BOUNDED

    def test_adopted_engine_schema_conflict(self):
        engine = BEAS(example1_database())
        with pytest.raises(BEASError, match="access_schema"):
            Session(beas=engine, access_schema=example1_access_schema())

    def test_server_options_forwarded_once(self):
        with Session(
            example1_database(),
            example1_access_schema(),
            server_options={"sharded": False},
        ) as s:
            assert s.server.sharded is False
            assert s.server is s.server  # memoised


# --------------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_query_decide_run(self, session):
        q = session.query(EXAMPLE2_SQL)
        decision = q.decide()
        assert decision.verdict == "bounded"
        assert decision.covered and decision.provenance == "fresh"
        assert decision.access_bound == 12026000
        result = decision.run()
        assert sorted(result.rows) == [("east",), ("north",), ("south",)]
        assert result.schema == ("region",)
        assert result.mode is ExecutionMode.BOUNDED
        assert len(result) == 3 and set(result) == result.to_set()

    def test_bind_returns_new_handle(self, session):
        q = session.query(CALL_SQL)
        bound = q.bind(date="2016-06-02")
        assert bound is not q and q.params == {}
        assert bound.params == {"date": "2016-06-02"}
        assert sorted(bound.run().rows) == [("555", "west")]
        # merging: later binds layer over earlier ones
        double = bound.bind(pnum="101")
        assert double.params == {"date": "2016-06-02", "pnum": "101"}
        assert double.run().rows == []
        assert bound.unbound().params == {}

    def test_decision_reuse_skips_checker(self, session):
        q = session.query(CALL_SQL)
        decision = q.decide()
        runs = session.beas.checker_runs
        for _ in range(3):
            assert len(decision.run()) == 2
        assert session.beas.checker_runs == runs

    def test_detached_decision_cannot_run(self, session):
        from repro.beas.session import Decision

        decision = session.query(CALL_SQL).decide()
        detached = Decision(decision.coverage, "fresh", 0, None)
        with pytest.raises(BEASError, match="not attached"):
            detached.run()

    def test_session_run_one_shot(self, session):
        result = session.run(CALL_SQL)
        assert len(result.rows) == 2
        assert result.decision.provenance in ("fresh", "cached")

    def test_explain(self, session):
        text = session.explain(EXAMPLE2_SQL)
        assert "fetch[" in text
        uncovered = session.query("SELECT type FROM business")
        assert "NOT covered" in uncovered.decide().describe()

    def test_not_covered_falls_back(self, session):
        result = session.query("SELECT type FROM business").run()
        assert result.mode in (ExecutionMode.PARTIAL, ExecutionMode.CONVENTIONAL)
        assert result.decision.verdict == "not-covered"
        assert len(result.rows) == 4

    def test_budget_round_trip(self, session):
        q = session.query(EXAMPLE2_SQL)
        decision = q.decide(budget=5000)
        assert decision.within_budget is False
        with pytest.raises(BudgetExceededError):
            q.run(budget=5000)
        approx = q.run(budget=5000, approximate_over_budget=True)
        assert approx.mode is ExecutionMode.APPROXIMATE
        assert approx.approximation is not None

    def test_decision_run_keeps_its_budget(self, session):
        """An over-budget verdict must never silently execute
        unbounded: run() defaults to the budget decide() evaluated."""
        decision = session.query(EXAMPLE2_SQL).decide(budget=5000)
        assert decision.within_budget is False
        with pytest.raises(BudgetExceededError):
            decision.run()
        approx = decision.run(approximate_over_budget=True)
        assert approx.mode is ExecutionMode.APPROXIMATE
        # an explicit call-level budget still wins
        relaxed = decision.run(budget=20_000_000)
        assert relaxed.mode is ExecutionMode.BOUNDED

    def test_maintenance_invalidates(self, session):
        q = session.query(CALL_SQL)
        assert len(q.run()) == 2
        session.insert("call", [(99, "100", "999", "2016-06-01", "bay")])
        refreshed = q.run()
        assert ("999", "bay") in refreshed.rows

    def test_register_through_session(self, session):
        session.register(
            AccessConstraint("call", ["region"], ["pnum"], 100, name="psiR")
        )
        d = session.query(
            "SELECT pnum FROM call WHERE region = 'north'"
        ).decide()
        assert d.covered and d.access_bound == 100
        session.unregister("psiR")

    def test_stats_exposes_rebind_counters(self, session):
        q = session.query(CALL_SQL)
        q.bind(date="2016-06-02").run()
        q.bind(date="2016-06-03").run()
        stats = session.stats()
        assert stats.rebinds >= 1
        assert stats.checker_runs == session.beas.checker_runs
        assert "plan rebinds" in stats.describe()

    def test_serve_async_front_end(self, session):
        import asyncio

        async def go():
            async with session.serve_async(max_workers=2) as aserver:
                result = await aserver.execute(CALL_SQL)
                decision, provenance = await aserver.decide_prepared(
                    session.query(CALL_SQL)._prepared, {"date": "2016-06-02"}
                )
                return result, decision, provenance

        result, decision, provenance = asyncio.run(go())
        assert len(result.rows) == 2
        assert decision.covered and provenance in ("fresh", "cached", "rebound")


# --------------------------------------------------------------------------- #
# the options chain
# --------------------------------------------------------------------------- #
class TestOptionsChain:
    def test_validation_at_construction(self):
        with pytest.raises(BEASError):
            ExecutionOptions(executor="simd")
        with pytest.raises(BEASError):
            ExecutionOptions(rows_per_batch=0)
        with pytest.raises(BEASError):
            ExecutionOptions(parallelism=-1)
        with pytest.raises(BEASError):
            ExecutionOptions(parallel_dispatch="scatter")
        with pytest.raises(BEASError):
            ExecutionOptions(budget=-5)
        with pytest.raises(BEASError):
            ExecutionOptions(allow_partial="yes")

    def test_defaults_are_concrete(self):
        d = ExecutionOptions.defaults()
        assert d.executor == "row" and d.parallelism == 1
        assert d.use_result_cache is True and d.allow_partial is True

    def test_env_layer(self, monkeypatch):
        monkeypatch.setenv("BEAS_EXECUTOR", "columnar")
        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "512")
        env = ExecutionOptions.from_environment()
        assert env.executor == "columnar" and env.rows_per_batch == 512

    def test_profile_beats_environment(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "512")
        profile = EngineProfile(name="custom", rows_per_batch=256)
        with Session(
            example1_database(), example1_access_schema(), profile=profile
        ) as s:
            assert s.options.rows_per_batch == 256

    def test_session_beats_profile(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "512")
        profile = EngineProfile(name="custom", rows_per_batch=256)
        with Session(
            example1_database(),
            example1_access_schema(),
            profile=profile,
            options=ExecutionOptions(rows_per_batch=128),
        ) as s:
            assert s.options.rows_per_batch == 128
            assert s.beas._rows_per_batch == 128

    def test_environment_is_the_last_layer(self, monkeypatch):
        monkeypatch.setenv("BEAS_EXECUTOR", "columnar")
        # an ambient BEAS_ROUTING=learned would reroute per query; this
        # test observes the static env executor layer specifically
        monkeypatch.delenv("BEAS_ROUTING", raising=False)
        with Session(example1_database(), example1_access_schema()) as s:
            assert s.options.executor == "columnar"
            result = s.query(CALL_SQL).run(use_result_cache=False)
            assert result.metrics.rows_per_batch > 0  # columnar ran

    def test_call_beats_query_beats_session(self, session):
        q = session.query(CALL_SQL).with_options(executor="columnar")
        r = q.run(use_result_cache=False)
        assert r.options.executor == "columnar"
        assert r.metrics.rows_per_batch > 0
        r = q.run(executor="row", use_result_cache=False)
        assert r.options.executor == "row"
        if session.options.parallelism < 2:
            # pooled execution always runs the columnar wire pipeline,
            # so the batch counter only goes quiet in-process
            assert r.metrics.rows_per_batch == 0

    def test_engine_pinned_options_cannot_drift(self, session):
        q = session.query(CALL_SQL)
        with pytest.raises(BEASError, match="cannot be overridden"):
            q.with_options(rows_per_batch=64).run()
        with pytest.raises(BEASError, match="cannot be overridden"):
            q.run(parallelism=3)
        # restating the pinned value is fine
        assert q.run(parallelism=session.options.parallelism) is not None

    def test_adopted_engine_conflict_raises(self):
        engine = BEAS(example1_database(), rows_per_batch=64)
        with pytest.raises(BEASError, match="conflicts with the adopted"):
            Session(beas=engine, options=ExecutionOptions(rows_per_batch=128))

    def test_options_merge_and_describe(self):
        a = ExecutionOptions(executor="columnar")
        b = ExecutionOptions(budget=10, executor="row")
        merged = a.over(b)
        assert merged.executor == "columnar" and merged.budget == 10
        assert "executor='columnar'" in a.describe()
        assert a.replace(budget=7).budget == 7


# --------------------------------------------------------------------------- #
# deprecation shims
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_old_entry_points_warn_and_delegate(self):
        beas = BEAS(example1_database(), example1_access_schema())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = beas.execute(CALL_SQL)
            server = beas.serve()
            prepared = beas.prepare(CALL_SQL)
            decided = beas.execute_decided(CALL_SQL, beas.check(CALL_SQL))
        assert len(result.rows) == 2 and len(decided.rows) == 2
        assert server.prepared(prepared.name) is prepared
        names = {w.category for w in caught}
        assert names == {BEASDeprecationWarning}
        assert len(caught) >= 4

    def test_session_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Session(example1_database(), example1_access_schema()) as s:
                q = s.query(CALL_SQL)
                q.decide().run()
                q.bind(date="2016-06-02").run()
                s.insert("call", [(98, "100", "998", "2016-06-01", "cove")])
                q.run()
                s.stats()

    def test_shims_share_the_session_server(self):
        """Old and new paths must drive one serving backend (caches are
        shared during migration)."""
        with Session(example1_database(), example1_access_schema()) as s:
            backend = s.server
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                assert s.beas.serve() is backend


# --------------------------------------------------------------------------- #
# construction-time validation satellites
# --------------------------------------------------------------------------- #
class TestValidationSatellites:
    def test_bad_executor_fails_beas_construction(self):
        with pytest.raises(BEASError, match="executor"):
            BEAS(example1_database(), executor="simd")

    def test_bad_executor_fails_session_construction(self):
        with pytest.raises(BEASError, match="executor"):
            Session(
                example1_database(),
                options=ExecutionOptions(executor="vectorised"),
            )

    def test_per_query_executor_validated_before_execution(self, session):
        q = session.query(CALL_SQL)
        with pytest.raises(BEASError, match="executor"):
            q.run(executor="simd")
        # the serving layer rejects it before any lock/execution too
        with pytest.raises(BEASError, match="executor"):
            session.server.execute(CALL_SQL, executor="simd")
        executions = session.server.stats().executions
        assert executions == 0  # nothing was admitted past validation

    def test_close_idempotent_after_failed_pool_spawn(self, monkeypatch):
        """A failed lazy pool spawn must fall back in-process and leave
        close()/__exit__ idempotent (no raise, callable repeatedly)."""

        class ExplodingPool:
            def __init__(self, *a, **k):
                raise OSError("fork refused")

        monkeypatch.setattr(beas_system, "EnginePool", ExplodingPool)
        with BEAS(
            example1_database(), example1_access_schema(), parallelism=2
        ) as beas:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                result = beas.execute(CALL_SQL)  # in-process fallback
            assert len(result.rows) == 2
            assert beas.pool is None
            beas.close()
            beas.close()  # idempotent
        # __exit__ ran close() a third time without raising

    def test_spawn_failure_is_not_retried_per_query(self, monkeypatch):
        attempts = []

        class ExplodingPool:
            def __init__(self, *a, **k):
                attempts.append(1)
                raise OSError("fork refused")

        monkeypatch.setattr(beas_system, "EnginePool", ExplodingPool)
        beas = BEAS(example1_database(), example1_access_schema(), parallelism=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for _ in range(3):
                beas.execute(CALL_SQL)
        assert len(attempts) == 1
