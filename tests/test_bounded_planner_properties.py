"""Planner-level properties: determinism, chain scalability, and
budget/approximation coherence under random data."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccessConstraint,
    AccessSchema,
    ASCatalog,
    BoundedApproximator,
    BoundedEvaluabilityChecker,
    BoundedPlanExecutor,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.bounded.planner import BoundedPlanGenerator
from repro.sql.normalize import normalize
from repro.sql.parser import parse

from tests.conftest import EXAMPLE2_SQL, example1_access_schema, example1_schema


class TestDeterminism:
    def test_same_query_same_plan(self):
        generator = BoundedPlanGenerator(
            example1_schema(), example1_access_schema()
        )
        cq = normalize(parse(EXAMPLE2_SQL), example1_schema())
        first = generator.generate(cq)
        second = generator.generate(cq)
        assert [op.describe() for op in first.ops] == [
            op.describe() for op in second.ops
        ]
        assert first.access_bound == second.access_bound

    def test_constraint_registration_order_irrelevant(self):
        """Shuffling the access schema's constraint order must not change
        the chosen plan's bound (greedy ties break on bound, not on
        registration order that happens to differ)."""
        base = list(example1_access_schema())
        forward = AccessSchema(base, name="fwd")
        backward = AccessSchema(list(reversed(base)), name="bwd")
        cq = normalize(parse(EXAMPLE2_SQL), example1_schema())
        plan_fwd = BoundedPlanGenerator(example1_schema(), forward).generate(cq)
        plan_bwd = BoundedPlanGenerator(example1_schema(), backward).generate(cq)
        assert plan_fwd.access_bound == plan_bwd.access_bound


class TestChainScalability:
    def test_long_join_chain_plans_quickly(self):
        """A 10-relation chain: the checker must stay effectively
        polynomial (the Feasibility Theorem's PTIME promise)."""
        length = 10
        tables = []
        constraints = []
        for i in range(length):
            tables.append(
                TableSchema(
                    f"t{i}",
                    [("a", DataType.INT), ("b", DataType.INT)],
                )
            )
            constraints.append(
                AccessConstraint(f"t{i}", ["a"], ["b"], 3, name=f"c{i}")
            )
        schema = DatabaseSchema(tables)
        access = AccessSchema(constraints)
        joins = " AND ".join(
            f"t{i}.b = t{i + 1}.a" for i in range(length - 1)
        )
        sql = (
            f"SELECT t{length - 1}.b FROM "
            + ", ".join(f"t{i}" for i in range(length))
            + f" WHERE t0.a = 1 AND {joins}"
        )
        checker = BoundedEvaluabilityChecker(schema, access)
        decision = checker.check(sql)
        assert decision.covered
        assert len(decision.plan.fetch_ops) == length
        # bound: 3^1 + 3^2 + ... + 3^length
        assert decision.access_bound == sum(3 ** i for i in range(1, length + 1))

    def test_chain_executes_correctly(self):
        length = 6
        tables = []
        constraints = []
        for i in range(length):
            tables.append(
                TableSchema(f"t{i}", [("a", DataType.INT), ("b", DataType.INT)])
            )
            constraints.append(
                AccessConstraint(f"t{i}", ["a"], ["b"], 3, name=f"c{i}")
            )
        schema = DatabaseSchema(tables)
        db = Database(schema)
        for i in range(length):
            for a in range(5):
                db.insert(f"t{i}", (a, (a + 1) % 5))
        access = AccessSchema(constraints)
        joins = " AND ".join(f"t{i}.b = t{i + 1}.a" for i in range(length - 1))
        sql = (
            f"SELECT DISTINCT t{length - 1}.b FROM "
            + ", ".join(f"t{i}" for i in range(length))
            + f" WHERE t0.a = 1 AND {joins}"
        )
        checker = BoundedEvaluabilityChecker(schema, access)
        decision = checker.check(sql)
        result = BoundedPlanExecutor(ASCatalog(db, access)).execute(decision.plan)
        from repro import ConventionalEngine

        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows)


class TestApproximationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["k1", "k2", "k3"]),
                st.sampled_from(["u", "v", "w", "x"]),
            ),
            max_size=20,
        ),
        budget=st.integers(0, 25),
    )
    def test_soundness_and_recall_under_random_data(self, rows, budget):
        schema = DatabaseSchema(
            [TableSchema("r", [("k", DataType.STRING), ("v", DataType.STRING)])]
        )
        db = Database(schema)
        for row in rows:
            db.insert("r", row)
        access = AccessSchema(
            [AccessConstraint("r", ["k"], ["v"], 10, name="by_k")]
        )
        sql = "SELECT DISTINCT v FROM r WHERE k IN ('k1', 'k2', 'k3')"
        checker = BoundedEvaluabilityChecker(db.schema, access)
        decision = checker.check(sql)
        assert decision.covered

        from repro import ConventionalEngine

        exact = set(ConventionalEngine(db).execute(sql).rows)
        result = BoundedApproximator(ASCatalog(db, access)).execute(
            decision.plan, budget=budget
        )
        found = set(result.rows)
        assert found <= exact
        assert result.tuples_fetched <= budget
        true_recall = len(found) / len(exact) if exact else 1.0
        assert true_recall >= result.recall_lower_bound - 1e-12
        if result.complete:
            assert found == exact
