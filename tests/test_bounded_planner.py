"""BE Plan Generator tests: Example 2's plan and bound arithmetic,
key-chaining, fetch ordering, and failure explanations."""

import pytest

from repro import AccessConstraint, AccessSchema
from repro.bounded.bounds import deduce_bounds
from repro.bounded.plan import FetchOp, SelectOp
from repro.bounded.planner import BoundedPlanGenerator
from repro.errors import NotCoveredError
from repro.sql.normalize import normalize
from repro.sql.parser import parse

from tests.conftest import EXAMPLE2_SQL, example1_access_schema, example1_schema


def plan_for(sql: str, access=None, schema=None, **kwargs):
    schema = schema or example1_schema()
    access = access or example1_access_schema()
    generator = BoundedPlanGenerator(schema, access)
    cq = normalize(parse(sql), schema)
    return generator.generate(cq, **kwargs)


def try_plan(sql: str, access=None, schema=None, **kwargs):
    schema = schema or example1_schema()
    access = access or example1_access_schema()
    generator = BoundedPlanGenerator(schema, access)
    cq = normalize(parse(sql), schema)
    return generator.try_generate(cq, **kwargs)


class TestExample2:
    """The paper's Example 2, including its exact bound arithmetic."""

    def test_plan_exists(self):
        assert plan_for(EXAMPLE2_SQL) is not None

    def test_fetch_order_matches_paper(self):
        plan = plan_for(EXAMPLE2_SQL)
        names = [op.constraint.name for op in plan.fetch_ops]
        assert names == ["psi3", "psi2", "psi1"]

    def test_paper_bounds_per_fetch(self):
        """Steps (1), (2), (4): at most 2000, 24000, and 12M tuples."""
        plan = plan_for(EXAMPLE2_SQL)
        bounds = [op.access_bound for op in plan.fetch_ops]
        assert bounds == [2000, 24_000, 12_000_000]

    def test_paper_total_bound(self):
        plan = plan_for(EXAMPLE2_SQL)
        assert plan.access_bound == 2000 + 24_000 + 12_000_000

    def test_tight_bound_exploits_distinctness(self):
        """At most 2000 distinct pnums reach psi1, so the tight bound for
        the call fetch is 2000 x 500 = 1M rather than 24000 x 500."""
        plan = plan_for(EXAMPLE2_SQL)
        tights = [op.tight_access_bound for op in plan.fetch_ops]
        assert tights == [2000, 24_000, 1_000_000]
        assert plan.tight_access_bound == 2000 + 24_000 + 1_000_000

    def test_selections_applied_after_materialisation(self):
        plan = plan_for(EXAMPLE2_SQL)
        selection_targets = {
            str(op.column)
            for op in plan.ops
            if isinstance(op, SelectOp) and op.kind == "selection"
        }
        assert "package.pid" in selection_targets

    def test_residual_range_filters_present(self):
        plan = plan_for(EXAMPLE2_SQL)
        filters = [
            op for op in plan.ops
            if isinstance(op, SelectOp) and op.kind == "filter"
        ]
        assert len(filters) == 2  # start <= d0, end >= d0

    def test_constraints_used(self):
        plan = plan_for(EXAMPLE2_SQL)
        assert {c.name for c in plan.constraints_used} == {"psi1", "psi2", "psi3"}

    def test_deduce_bounds_summary(self):
        summary = deduce_bounds(plan_for(EXAMPLE2_SQL))
        assert summary.access_bound == 12_026_000
        assert [f.key_bound for f in summary.fetches] == [1, 2000, 24_000]
        assert "psi3" in summary.describe()

    def test_not_bag_exact_without_keys(self):
        # psi1/psi2 do not expose call_id/pkg_id, business is keyed by pnum
        plan = plan_for(EXAMPLE2_SQL)
        assert not plan.bag_exact


class TestSimpleCoverage:
    def test_single_fetch_with_constants(self):
        plan = plan_for(
            "SELECT recnum FROM call WHERE pnum = '1' AND date = '2016-06-01'"
        )
        assert len(plan.fetch_ops) == 1
        assert plan.access_bound == 500

    def test_in_list_multiplies_key_bound(self):
        plan = plan_for(
            "SELECT recnum FROM call "
            "WHERE pnum IN ('1', '2', '3') AND date = '2016-06-01'"
        )
        fetch = plan.fetch_ops[0]
        assert fetch.key_bound == 3
        assert fetch.access_bound == 1500

    def test_two_in_lists_multiply(self):
        plan = plan_for(
            "SELECT recnum FROM call WHERE pnum IN ('1', '2') "
            "AND date IN ('2016-06-01', '2016-06-02')"
        )
        assert plan.fetch_ops[0].key_bound == 4

    def test_contradictory_selection_gives_zero_bound(self):
        plan = plan_for(
            "SELECT recnum FROM call "
            "WHERE pnum = '1' AND pnum = '2' AND date = '2016-06-01'"
        )
        assert plan.access_bound == 0

    def test_missing_x_attribute_not_covered(self):
        plan, reasons = try_plan("SELECT recnum FROM call WHERE pnum = '1'")
        assert plan is None
        assert any("call" in r for r in reasons)

    def test_unconstrained_relation_not_covered(self):
        access = AccessSchema(
            [AccessConstraint("call", ["pnum", "date"], ["recnum"], 500)]
        )
        plan, reasons = try_plan(
            "SELECT pid FROM package WHERE pnum = '1' AND year = 2016",
            access=access,
        )
        assert plan is None
        assert any("no access constraints" in r for r in reasons)

    def test_needed_attribute_outside_constraint_not_covered(self):
        # region is needed but psi_small only exposes recnum
        access = AccessSchema(
            [AccessConstraint("call", ["pnum", "date"], ["recnum"], 500)]
        )
        plan, reasons = try_plan(
            "SELECT region FROM call WHERE pnum = '1' AND date = '2016-06-01'",
            access=access,
        )
        assert plan is None
        assert any("lacks" in r for r in reasons)


class TestGreedyFetchOrdering:
    def test_smallest_bound_first(self):
        """Two ways to seed: the planner starts with the cheaper fetch."""
        schema = example1_schema()
        access = AccessSchema(
            [
                AccessConstraint(
                    "business", ["type", "region"], ["pnum"], 2000, name="big"
                ),
                AccessConstraint(
                    "package", ["pid", "year"], ["pnum", "start", "end"], 10,
                    name="small",
                ),
                AccessConstraint(
                    "call", ["pnum", "date"], ["recnum", "region"], 500,
                    name="calls",
                ),
            ]
        )
        sql = """
            SELECT c.recnum FROM call c, package p
            WHERE p.pid = 'c0' AND p.year = 2016 AND p.pnum = c.pnum
              AND c.date = '2016-06-01'
        """
        plan = plan_for(sql, access=access, schema=schema)
        assert [op.constraint.name for op in plan.fetch_ops] == ["small", "calls"]


class TestKeyChaining:
    def test_chain_via_key(self):
        """needed(o) spans two constraints; the first exposes the key."""
        access = AccessSchema(
            [
                AccessConstraint(
                    "call", ["pnum", "date"], ["call_id", "recnum"], 500,
                    name="anchor",
                ),
                AccessConstraint(
                    "call", ["call_id"], ["region"], 1, name="by_key"
                ),
            ]
        )
        plan = plan_for(
            "SELECT recnum, region FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'",
            access=access,
        )
        names = [op.constraint.name for op in plan.fetch_ops]
        assert names == ["anchor", "by_key"]
        assert plan.bag_exact  # anchored via call_id

    def test_chain_without_key_rejected(self):
        """Joining two non-key fetches on one occurrence is unsound: the
        planner must refuse (superset-of-projection hazard)."""
        access = AccessSchema(
            [
                AccessConstraint(
                    "call", ["pnum", "date"], ["recnum"], 500, name="f1"
                ),
                AccessConstraint(
                    "call", ["pnum", "date"], ["region"], 500, name="f2"
                ),
            ]
        )
        plan, reasons = try_plan(
            "SELECT recnum, region FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'",
            access=access,
        )
        assert plan is None

    def test_chain_bound_arithmetic(self):
        access = AccessSchema(
            [
                AccessConstraint(
                    "call", ["pnum", "date"], ["call_id", "recnum"], 500,
                    name="anchor",
                ),
                AccessConstraint(
                    "call", ["call_id"], ["region"], 1, name="by_key"
                ),
            ]
        )
        plan = plan_for(
            "SELECT recnum, region FROM call "
            "WHERE pnum = '1' AND date = '2016-06-01'",
            access=access,
        )
        assert [op.access_bound for op in plan.fetch_ops] == [500, 500]


class TestBagExactness:
    def test_require_bag_exact_backtracks_to_keyed_constraint(self):
        access = AccessSchema(
            [
                AccessConstraint(
                    "call", ["pnum", "date"], ["recnum", "region"], 500,
                    name="plain",
                ),
                AccessConstraint(
                    "call", ["pnum", "date"], ["call_id", "recnum", "region"],
                    500, name="keyed",
                ),
            ]
        )
        sql = (
            "SELECT region FROM call WHERE pnum = '1' AND date = '2016-06-01'"
        )
        relaxed = plan_for(sql, access=access)
        strict = plan_for(sql, access=access, require_bag_exact=True)
        assert strict.bag_exact
        assert [op.constraint.name for op in strict.fetch_ops] == ["keyed"]
        # the relaxed plan may pick either; both cover
        assert relaxed is not None

    def test_require_bag_exact_fails_without_key_constraint(self):
        plan, _ = try_plan(EXAMPLE2_SQL, require_bag_exact=True)
        assert plan is None


class TestEqualityEnforcement:
    def test_unkeyed_equality_becomes_select_op(self):
        """b.region = c.region is not used as any fetch key: the planner
        must emit an explicit equality filter."""
        sql = """
            SELECT c.recnum FROM call c, business b
            WHERE b.type = 'bank' AND b.region = 'east'
              AND b.pnum = c.pnum AND c.date = '2016-06-01'
              AND c.region = b.region
        """
        plan = plan_for(sql)
        equalities = [
            op for op in plan.ops
            if isinstance(op, SelectOp) and op.kind == "equality"
        ]
        assert len(equalities) == 1

    def test_generate_raises_not_covered(self):
        with pytest.raises(NotCoveredError) as exc:
            plan_for("SELECT recnum FROM call WHERE pnum = '1'")
        assert exc.value.reasons
