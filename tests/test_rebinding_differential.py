"""Rebinding differential suite: rebound plans ≡ freshly decided plans.

The serving layer pins one decision per (template fingerprint, arity
signature) and *rebinds* it for every later equal-signature binding by
patching the plan's constant key parts — zero BE Checker runs
(``src/repro/bounded/rebind.py``). This suite locks that mechanic to a
fresh-decision oracle over >= 100 seeded (query, binding-stream)
scenarios:

* **exact row order** — not just set equality;
* **exact ``tuples_fetched``** and per-fetch-op accounting (operation
  label, tuples in, tuples out) — the §3 bound arithmetic must be
  byte-identical under rebinding;
* **checker-invocation counters** — equal-arity rebinds perform zero
  checker runs; arity, type-class, and NULL changes re-check (or are
  rejected outright).
"""

from __future__ import annotations

import random

import pytest

from repro import BEAS, Session
from repro.errors import ServingError
from repro.serving.params import extract_slots, resolve_overrides, substitute

from tests.conftest import example1_access_schema, example1_database

# --------------------------------------------------------------------------- #
# templates: every one is covered by the example-1 access schema A0
# --------------------------------------------------------------------------- #
TEMPLATES = {
    "join3": """
        select call.region
        from call, package, business
        where business.type = 'bank' and business.region = 'east'
          and business.pnum = call.pnum and call.date = '2016-06-01'
          and call.pnum = package.pnum and package.year = 2016
          and package.start <= '2016-06-01' and package.end >= '2016-06-01'
          and package.pid = 'c0'
    """,
    "single": """
        select recnum, region from call
        where pnum = '100' and date = '2016-06-01'
    """,
    "distinct": """
        select distinct region from call
        where pnum = '100' and date = '2016-06-01'
    """,
    "inlist": """
        select recnum from call
        where pnum in ('100', '101') and date = '2016-06-01'
    """,
    "join2": """
        select b.pnum, c.region
        from business b, call c
        where b.type = 'bank' and b.region = 'east'
          and b.pnum = c.pnum and c.date = '2016-06-01'
    """,
    # two slots in ONE equality class: their values intersect, so the
    # merged per-class arity can change even at equal per-slot arity —
    # this template exercises the rebinder's merged-arity guard fallback
    "shared-class": """
        select c.region
        from call c, business b
        where c.pnum = '100' and b.pnum = '100' and c.pnum = b.pnum
          and b.type = 'bank' and b.region = 'east'
          and c.date = '2016-06-01'
    """,
}

#: Value pools per slot (drawn seeded; scalars keep the pinned arity).
VALUE_POOLS = {
    "call.date": [f"2016-06-0{d}" for d in range(1, 8)],
    "c.date": [f"2016-06-0{d}" for d in range(1, 8)],
    "call.pnum": ["100", "101", "102", "103"],
    "c.pnum": ["100", "101", "102", "103"],
    "b.pnum": ["100", "101", "102", "103"],
    "business.type": ["bank", "shop", "lab"],
    "b.type": ["bank", "shop", "lab"],
    "business.region": ["east", "west", "north"],
    "b.region": ["east", "west", "north"],
    "package.year": [2015, 2016, 2017],
    "package.pid": ["c0", "c1", "c2"],
}

SEEDS = range(18)
BINDINGS_PER_STREAM = 5


@pytest.fixture(scope="module")
def rig():
    """One shared database; independent engines for oracle and serving
    (the oracle's checker runs must not pollute the session's counter)."""
    db = example1_database()
    schema = example1_access_schema()
    oracle = BEAS(db, schema)
    session = Session(beas=BEAS(db, schema))
    return oracle, session


def _binding_stream(template_key: str, slots, seed: int) -> list[dict]:
    """A seeded stream of bindings over the template's slots."""
    rng = random.Random((hash(template_key) & 0xFFFF) * 1000 + seed)
    names = sorted(slots)
    stream = []
    for _ in range(BINDINGS_PER_STREAM):
        overridden = rng.sample(names, k=rng.randint(1, len(names)))
        binding = {}
        for name in overridden:
            pool = VALUE_POOLS[name]
            if slots[name].kind == "in":
                # keep the pinned arity: the template's own IN-list size
                binding[name] = rng.sample(pool, k=len(slots[name].values))
            else:
                binding[name] = rng.choice(pool)
        stream.append(binding)
    return stream


def _execution_profile(metrics):
    """The execution-relevant accounting (cache counters excluded)."""
    return (
        metrics.tuples_fetched,
        metrics.tuples_scanned,
        metrics.intermediate_rows,
        [(op.label, op.tuples_in, op.tuples_out) for op in metrics.operations],
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("template_key", sorted(TEMPLATES))
def test_rebound_equals_fresh_decision(rig, template_key, seed):
    """>= 100 scenarios: serving (rebound or cached decisions) must match
    a fresh BE Checker decision + execution for every binding, exactly."""
    oracle, session = rig
    sql = TEMPLATES[template_key]
    query = session.query(sql, name=f"{template_key}")
    slots = query.slots
    assert slots, f"template {template_key} has no parameterisable slots"

    oracle_slots = extract_slots(
        query._prepared.statement, oracle.database.schema
    )
    for binding in _binding_stream(template_key, slots, seed):
        served = query.bind(binding).run(use_result_cache=False)

        resolved = resolve_overrides(
            binding, oracle_slots, query._prepared.statement,
            oracle.database.schema,
        )
        statement = substitute(
            query._prepared.statement, resolved, oracle.database.schema
        )
        fresh_decision = oracle.check(statement)  # a full checker run
        assert fresh_decision.covered, template_key
        fresh = oracle.bounded_executor().execute(fresh_decision.plan)

        # exact row order, not just set equality
        assert served.rows == fresh.rows, (template_key, seed, binding)
        # identical deduced bounds on the decision actually used
        assert served.decision.access_bound == fresh_decision.access_bound
        assert (
            served.decision.tight_access_bound
            == fresh_decision.tight_access_bound
        )
        # identical §3 accounting, fetch op by fetch op
        assert _execution_profile(served.metrics) == _execution_profile(
            fresh.metrics
        ), (template_key, seed, binding)


def test_scenario_floor():
    """The acceptance bar: >= 100 seeded (query, binding-stream)
    scenarios actually parametrized above."""
    assert len(TEMPLATES) * len(SEEDS) >= 100


# --------------------------------------------------------------------------- #
# checker-invocation counters
# --------------------------------------------------------------------------- #
class TestCheckerSkips:
    def _fresh_session(self):
        return Session(
            beas=BEAS(example1_database(), example1_access_schema())
        )

    def test_equal_arity_rebinds_run_zero_checks(self):
        session = self._fresh_session()
        query = session.query(TEMPLATES["single"])
        # first binding of the signature: exactly one checker run
        query.bind(date="2016-06-02").run(use_result_cache=False)
        assert session.beas.checker_runs == 1
        # ten more equal-arity bindings: zero further checker runs
        for day in range(3, 8):
            r = query.bind(date=f"2016-06-0{day}").run(use_result_cache=False)
            assert r.decision.provenance == "rebound"
            r2 = query.bind(
                date=f"2016-06-0{day}", pnum="101"
            ).run(use_result_cache=False)
        assert session.beas.checker_runs == 2  # one per distinct signature
        stats = session.stats()
        assert stats.rebinds >= 5
        assert stats.checker_runs == 2

    def test_arity_change_triggers_recheck(self):
        session = self._fresh_session()
        query = session.query(TEMPLATES["single"])
        query.bind(date="2016-06-02").run(use_result_cache=False)
        base = session.beas.checker_runs
        # IN-list arity 2 is a different signature: re-checked once ...
        r = query.bind(date=["2016-06-03", "2016-06-04"]).run(
            use_result_cache=False
        )
        assert r.decision.provenance == "fresh"
        assert session.beas.checker_runs == base + 1
        # ... and then rebinds at the new arity
        r = query.bind(date=["2016-06-05", "2016-06-06"]).run(
            use_result_cache=False
        )
        assert r.decision.provenance == "rebound"
        assert session.beas.checker_runs == base + 1

    def test_type_class_change_triggers_recheck(self):
        session = self._fresh_session()
        query = session.query(TEMPLATES["single"])
        query.bind(pnum="100").run(use_result_cache=False)
        base = session.beas.checker_runs
        r = query.bind(pnum=100).run(use_result_cache=False)  # str -> int
        assert r.decision.provenance == "fresh"
        assert session.beas.checker_runs == base + 1

    def test_null_binding_is_rejected_outright(self):
        session = self._fresh_session()
        query = session.query(TEMPLATES["single"])
        query.bind(date="2016-06-02").run(use_result_cache=False)
        with pytest.raises(ServingError, match="NULL"):
            query.bind(date=None).run()

    def test_exact_repeat_is_cached_not_rebound(self):
        session = self._fresh_session()
        query = session.query(TEMPLATES["single"])
        query.bind(date="2016-06-02").run(use_result_cache=False)
        r = query.bind(date="2016-06-02").run(use_result_cache=False)
        assert r.decision.provenance == "cached"
        assert session.beas.checker_runs == 1

    def test_merged_arity_guard_falls_back(self):
        """Two slots in one equality class: a binding whose values stop
        intersecting changes the merged class arity, so the rebinder
        must refuse and a full re-check must produce the (empty) answer."""
        session = self._fresh_session()
        query = session.query(TEMPLATES["shared-class"])
        both = {"c.pnum": "100", "b.pnum": "100"}
        r = query.bind(both).run(use_result_cache=False)
        assert r.decision.provenance == "fresh"
        base = session.beas.checker_runs
        # equal values again: same merged arity -> rebind
        r = query.bind({"c.pnum": "101", "b.pnum": "101"}).run(
            use_result_cache=False
        )
        assert r.decision.provenance == "rebound"
        assert session.beas.checker_runs == base
        # diverging values: merged class becomes empty -> guard fallback
        r = query.bind({"c.pnum": "100", "b.pnum": "101"}).run(
            use_result_cache=False
        )
        assert r.decision.provenance == "fresh"
        assert r.rows == []
        assert session.beas.checker_runs == base + 1
        assert session.stats().rebind_fallbacks >= 1

    def test_schema_change_invalidates_pinned_templates(self):
        """register/unregister bumps the schema generation: pinned
        templates must not survive it."""
        from repro import AccessConstraint

        session = self._fresh_session()
        query = session.query(TEMPLATES["single"])
        query.bind(date="2016-06-02").run(use_result_cache=False)
        r = query.bind(date="2016-06-03").run(use_result_cache=False)
        assert r.decision.provenance == "rebound"
        session.register(
            AccessConstraint(
                "call", ["pnum"], ["recnum"], 50, name="psi-extra"
            )
        )
        base = session.beas.checker_runs
        r = query.bind(date="2016-06-04").run(use_result_cache=False)
        assert r.decision.provenance == "fresh"  # re-decided, new generation
        assert session.beas.checker_runs == base + 1
        session.unregister("psi-extra")
