"""Wire-frame corruption on the replica socket degrades, never lies.

The socket twin of ``tests/test_storage_persistence.py``'s WAL-tail
cases: the same ``u32 len | u32 crc32 | payload`` frame, the same
corruption classes (torn frame, short payload, CRC flip, implausible
length), and the same contract — a corrupt stream is detected, never
resynchronised, and never produces a wrong answer. At the protocol
layer every class raises :class:`~repro.distributed.protocol.WireError`
deterministically (driven over a ``socketpair``); end to end, a fault
injected into a replica's reply makes the coordinator tear the
connection down and answer locally, with the failover visible in
``FleetStats`` — and the respawned replica serves the next read.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading

import pytest

from repro import BEAS
from repro.distributed.protocol import (
    WireError,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
)
from repro.storage.wal import MAX_FRAME_BYTES, frame_record

from tests.conftest import example1_access_schema, example1_database

_PORTS = itertools.count(8100, 16)

CALL_SQL = (
    "SELECT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def _recv_in_thread(sock):
    """Run recv_message on a thread so a sender can close mid-frame."""
    outcome = {}

    def run():
        try:
            outcome["message"] = recv_message(sock)
        except BaseException as error:  # noqa: BLE001 - assertion target
            outcome["error"] = error

    thread = threading.Thread(target=run)
    thread.start()
    return thread, outcome


# --------------------------------------------------------------------------- #
# protocol layer: every corruption class is a deterministic WireError
# --------------------------------------------------------------------------- #
class TestFrameProtocol:
    def test_roundtrip(self, pair):
        left, right = pair
        send_message(left, ("ping", 42))
        assert recv_message(right) == ("ping", 42)
        send_frame(left, b"raw-payload")
        assert recv_frame(right) == b"raw-payload"

    def test_partial_header_then_eof(self, pair):
        left, right = pair
        frame = frame_record(pickle.dumps(("ok",)))
        thread, outcome = _recv_in_thread(right)
        left.sendall(frame[:3])  # 3 of the 8 header bytes
        left.close()
        thread.join(timeout=10)
        assert isinstance(outcome.get("error"), WireError)
        assert "3 bytes into a 8-byte read" in str(outcome["error"])

    def test_short_payload_then_eof(self, pair):
        left, right = pair
        frame = frame_record(pickle.dumps(("ok", "x" * 64)))
        thread, outcome = _recv_in_thread(right)
        left.sendall(frame[: len(frame) - 10])  # honest header, torn body
        left.close()
        thread.join(timeout=10)
        assert isinstance(outcome.get("error"), WireError)
        assert "bytes into a" in str(outcome["error"])

    def test_crc_flip(self, pair):
        left, right = pair
        frame = bytearray(frame_record(pickle.dumps(("ok",))))
        frame[-1] ^= 0xFF  # last payload byte; header stays honest
        left.sendall(bytes(frame))
        with pytest.raises(WireError, match="checksum mismatch"):
            recv_message(right)

    def test_implausible_length(self, pair):
        left, right = pair
        frame = frame_record(pickle.dumps(("ok",)))
        bad = (MAX_FRAME_BYTES + 1).to_bytes(4, "little") + frame[4:]
        left.sendall(bad)
        # rejected from the header alone: no attempt to read ~1 GiB
        with pytest.raises(WireError, match="length"):
            recv_message(right)

    def test_crc_valid_but_unpicklable_payload(self, pair):
        left, right = pair
        send_frame(left, b"\x80\x05this is not a pickle")
        with pytest.raises(WireError, match="unpickle"):
            recv_message(right)

    def test_crc_valid_but_not_a_tuple(self, pair):
        left, right = pair
        send_frame(left, pickle.dumps(["not", "a", "tuple"]))
        with pytest.raises(WireError, match="not a protocol tuple"):
            recv_message(right)

    def test_oversized_send_is_refused_locally(self, pair):
        left, _ = pair
        with pytest.raises(WireError):
            send_frame(left, b"x" * (MAX_FRAME_BYTES + 1))


# --------------------------------------------------------------------------- #
# end to end: a corrupt reply fails over to coordinator-local serving
# --------------------------------------------------------------------------- #
class TestCorruptReplyFailover:
    @pytest.mark.parametrize("mode", ["truncate", "crc", "length"])
    def test_corrupt_reply_degrades_to_local_and_recovers(self, mode):
        beas = BEAS(
            example1_database(),
            example1_access_schema(),
            replicas=2,
            fleet_port_base=next(_PORTS),
        )
        oracle = BEAS(example1_database(), example1_access_schema())
        try:
            session = beas.session()
            query = session.query(CALL_SQL)
            clean = query.run(use_result_cache=False)
            victim = clean.metrics.replica_id
            assert victim >= 0
            expected = (
                oracle.session().query(CALL_SQL).run(use_result_cache=False)
            )
            assert clean.rows == expected.rows

            beas.fleet.debug("corrupt_next_reply", mode, replica_id=victim)
            base = beas.fleet_stats()
            # the corrupted reply must neither hang the coordinator nor
            # leak a wrong answer: the dispatch fails over and the
            # coordinator's local execution answers, identically
            corrupted = query.run(use_result_cache=False)
            assert corrupted.rows == expected.rows
            assert corrupted.metrics.replica_id == -1
            stats = beas.fleet_stats()
            assert stats.failovers == base.failovers + 1
            assert stats.fallbacks == base.fallbacks + 1

            # the torn connection is never resynchronised: the replica is
            # respawned with a fresh stream and serves again
            recovered = query.run(use_result_cache=False)
            assert recovered.rows == expected.rows
            assert recovered.metrics.replica_id == victim
            assert beas.fleet_stats().respawns >= 1
        finally:
            beas.close()
            oracle.close()

    def test_unapplicable_delta_reships_full_snapshot(self):
        # not byte corruption, but the same degrade-don't-lie contract
        # one layer up: a delta the replica cannot apply must answer
        # unsupported and trigger a full snapshot re-ship
        beas = BEAS(
            example1_database(),
            example1_access_schema(),
            replicas=2,
            fleet_port_base=next(_PORTS),
        )
        try:
            session = beas.session()
            query = session.query(CALL_SQL)
            victim = query.run(use_result_cache=False).metrics.replica_id
            # claim a bogus installed key: the next dispatch believes the
            # replica is current, gets a stale reply, and re-ships
            beas.fleet.debug(
                "set_snapshot_key", (999, ()), replica_id=victim
            )
            base = beas.fleet_stats()
            result = query.run(use_result_cache=False)
            assert result.rows
            assert result.metrics.replica_id == victim
            stats = beas.fleet_stats()
            assert stats.stale_reships == base.stale_reships + 1
        finally:
            beas.close()
