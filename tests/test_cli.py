"""CLI tests (invoking repro.cli.main directly, capturing output)."""

import json

import pytest

from repro.cli import main
from repro.access.io import dump_schema
from repro.storage.csvio import dump_csv

from tests.conftest import example1_access_schema, example1_database


@pytest.fixture
def workspace(tmp_path):
    """A data directory (CSV dumps of Example 1) plus the A0 schema JSON."""
    data = tmp_path / "data"
    data.mkdir()
    db = example1_database()
    for table in db:
        dump_csv(table, data / f"{table.schema.name}.csv")
    schema_path = tmp_path / "schema.json"
    dump_schema(example1_access_schema(), schema_path)
    return data, schema_path


QUERY = (
    "SELECT DISTINCT recnum FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)


class TestCheck:
    def test_covered_query_exits_zero(self, workspace, capsys):
        data, schema = workspace
        code = main(
            ["check", "--data", str(data), "--schema", str(schema), "--sql", QUERY]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "covered" in out and "500" in out

    def test_uncovered_query_exits_one(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "check", "--data", str(data), "--schema", str(schema),
                "--sql", "SELECT recnum FROM call",
            ]
        )
        assert code == 1
        assert "NOT covered" in capsys.readouterr().out

    def test_budget_reported(self, workspace, capsys):
        data, schema = workspace
        main(
            [
                "check", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--budget", "1000",
            ]
        )
        assert "within budget: True" in capsys.readouterr().out


class TestExplainAndRun:
    def test_explain_shows_fetch(self, workspace, capsys):
        data, schema = workspace
        assert main(
            ["explain", "--data", str(data), "--schema", str(schema), "--sql", QUERY]
        ) == 0
        assert "fetch[psi1]" in capsys.readouterr().out

    def test_run_prints_rows(self, workspace, capsys):
        data, schema = workspace
        assert main(
            ["run", "--data", str(data), "--schema", str(schema), "--sql", QUERY]
        ) == 0
        captured = capsys.readouterr()
        assert "recnum" in captured.out.splitlines()[0]
        assert "555" in captured.out
        assert "bounded" in captured.err

    def test_run_limit(self, workspace, capsys):
        data, schema = workspace
        main(
            [
                "run", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--limit", "1",
            ]
        )
        assert "more rows" in capsys.readouterr().out

    def test_query_from_file(self, workspace, tmp_path, capsys):
        data, schema = workspace
        query_file = tmp_path / "q.sql"
        query_file.write_text(QUERY)
        assert main(
            [
                "run", "--data", str(data), "--schema", str(schema),
                "--file", str(query_file),
            ]
        ) == 0

    def test_missing_query_is_an_error(self, workspace, capsys):
        data, schema = workspace
        assert main(
            ["run", "--data", str(data), "--schema", str(schema)]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestDiscoverAndConform:
    def test_conform_ok(self, workspace, capsys):
        data, schema = workspace
        assert main(["conform", "--data", str(data), "--schema", str(schema)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_conform_violation(self, workspace, tmp_path, capsys):
        data, _ = workspace
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "constraints": [
                        {
                            "name": "too_tight", "relation": "call",
                            "x": ["pnum"], "y": ["recnum"], "n": 1,
                        }
                    ]
                }
            )
        )
        assert main(["conform", "--data", str(data), "--schema", str(bad)]) == 1
        assert "violations" in capsys.readouterr().out

    def test_discover_writes_schema(self, workspace, tmp_path, capsys):
        data, _ = workspace
        workload = tmp_path / "workload.sql"
        workload.write_text(QUERY + ";\nSELECT DISTINCT pid FROM package WHERE pnum = '100' AND year = 2016")
        output = tmp_path / "discovered.json"
        code = main(
            [
                "discover", "--data", str(data), "--workload", str(workload),
                "--output", str(output),
            ]
        )
        assert code == 0
        document = json.loads(output.read_text())
        assert document["constraints"]
        assert "covering 2 queries" in capsys.readouterr().out

    def test_missing_data_dir(self, tmp_path, capsys):
        assert main(
            [
                "conform", "--data", str(tmp_path / "nope"),
                "--schema", str(tmp_path / "nope.json"),
            ]
        ) == 2


class TestServeStats:
    def test_repeated_query_reports_cache_stats(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving stats:" in out
        assert "result:" in out and "hits" in out
        assert "served_from_cache=True" in out
        assert "latency: cold" in out

    def test_result_reuse_subsume_reports_counters(self, workspace, capsys):
        """The subsumption counters must surface in serve-stats output;
        the DISTINCT template is a refused shape, so the probe registers
        rejects rather than unsound subsumed hits."""
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "3",
                "--result-reuse", "subsume",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "subsumption:" in out
        assert "0 subsumed hits" in out  # DISTINCT is never subsumed
        assert "rejects" in out

    def test_result_reuse_counters_default_to_zero(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "2",
                # pinned: the CI matrix leg forces BEAS_RESULT_REUSE=subsume,
                # under which the DISTINCT template registers probe rejects
                "--result-reuse", "exact",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "subsumption: 0 subsumed hits, 0 rejects" in out

    def test_param_binding(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "2",
                "--param", "call.date=2016-06-02",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "slots:" in out

    def test_bad_param_is_an_error(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--param", "no-equals-sign",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_once_seen_query_reports_declined_admission(self, workspace, capsys):
        """--repeat 1: the admission policy declines the one-off, and the
        eviction/decline counters surface in the serve-stats output."""
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "served_from_cache=False" in out
        assert "1 admissions declined" in out
        assert "0 evictions" in out

    def test_concurrent_threads_report_shard_counters(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "5", "--threads", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "concurrent: 20 executes across 4 threads" in out
        assert "ops/s aggregate" in out
        assert "shard call:" in out
        assert "lock contention:" in out

    def test_executor_counters_reported_for_row_mode(self, workspace, capsys):
        """Regression for the PR 3 columnar fields: serve-stats must
        surface the executor counters of the cold run (row mode: no
        batching, real fetch count)."""
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "3",
                # pinned: the CI matrix legs force BEAS_EXECUTOR/
                # BEAS_PARALLELISM env defaults that would otherwise turn
                # this row-mode run columnar or pooled
                "--executor", "row", "--parallelism", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "executor: mode=row rows_per_batch=0 batches=0" in out
        assert "fetched=" in out
        assert "pool:" not in out  # no pool at parallelism 1

    def test_columnar_executor_counters_reported(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "2",
                "--executor", "columnar", "--rows-per-batch", "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "executor: mode=columnar rows_per_batch=8" in out
        assert "batches=" in out and "batches=0" not in out

    def test_parallelism_reports_pool_counters(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "3", "--parallelism", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pool: workers=2 dispatched=" in out
        assert "engine pool: 2/2 workers alive" in out  # server stats line

    def test_invalid_parallelism_is_a_clear_error(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--parallelism", "0",
            ]
        )
        assert code == 2
        assert "parallelism must be >= 1" in capsys.readouterr().err

    def test_baseline_serves_through_the_global_shard(self, workspace, capsys):
        data, schema = workspace
        code = main(
            [
                "serve-stats", "--data", str(data), "--schema", str(schema),
                "--sql", QUERY, "--repeat", "3", "--baseline",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shard __global__:" in out
        assert "shard call:" not in out


class TestSqlScriptLoading:
    def test_database_from_sql_script(self, tmp_path, capsys):
        data = tmp_path / "data"
        data.mkdir()
        (data / "schema.sql").write_text(
            "CREATE TABLE t (k STRING, v STRING);"
            "INSERT INTO t VALUES ('a', 'x'), ('a', 'y')"
        )
        schema = tmp_path / "schema.json"
        schema.write_text(
            json.dumps(
                {
                    "constraints": [
                        {"name": "c", "relation": "t", "x": ["k"],
                         "y": ["v"], "n": 10}
                    ]
                }
            )
        )
        code = main(
            [
                "run", "--data", str(data), "--schema", str(schema),
                "--sql", "SELECT DISTINCT v FROM t WHERE k = 'a'",
            ]
        )
        assert code == 0
        assert "x" in capsys.readouterr().out
