"""Sharding primitives + the shard-invalidation property.

The load-bearing test here is the **invalidation property**: after any
random mutation sequence through the serving layer,

* every surviving result-cache entry's recorded ``Table.version``
  vector equals the live versions of its dependency tables (no stale
  entry survives), and
* every entry whose dependency tables were untouched by a mutation is
  still cached (no fresh entry is needlessly evicted).

Plus focused coverage of the pieces: the reader/writer lock, the
striped cache, canonical shard ordering, the admission policy, and the
global-lock (``sharded=False``) degradation mode.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import BEAS
from repro.errors import MaintenanceError, ServingError
from repro.serving import BEASServer, ShardLock, StripedCache, TableShard
from repro.serving.shard import order_shards

from tests.conftest import (
    EXAMPLE2_SQL,
    example1_access_schema,
    example1_database,
)

CALL_SQL = (
    "SELECT DISTINCT recnum, region FROM call "
    "WHERE pnum = '100' AND date = '2016-06-01'"
)
PACKAGE_SQL = "SELECT pid FROM package WHERE pnum = '100' AND year = 2016"
BUSINESS_SQL = (
    "SELECT business.pnum FROM business WHERE business.type = 'bank' "
    "AND business.region = 'east'"
)


@pytest.fixture
def server() -> BEASServer:
    return BEAS(example1_database(), example1_access_schema()).serve()


# --------------------------------------------------------------------------- #
# the reader/writer lock
# --------------------------------------------------------------------------- #
class TestShardLock:
    def test_readers_are_concurrent(self):
        lock = ShardLock("t")
        inside = threading.Barrier(3, timeout=10)

        def read() -> None:
            with lock.read():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=read) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert all(not t.is_alive() for t in threads)
        assert lock.stats.read_acquisitions == 3

    def test_writer_excludes_readers_and_is_counted(self):
        lock = ShardLock("t")
        order: list[str] = []
        lock.acquire_write()

        def read() -> None:
            with lock.read():
                order.append("reader")

        thread = threading.Thread(target=read)
        thread.start()
        time.sleep(0.05)
        order.append("writer-release")
        lock.release_write()
        thread.join(timeout=10)
        assert order == ["writer-release", "reader"]
        assert lock.stats.contended_acquisitions == 1
        assert lock.stats.read_wait_seconds > 0

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a steady read stream cannot starve writes."""
        lock = ShardLock("t")
        lock.acquire_read()
        got_write = threading.Event()
        got_second_read = threading.Event()

        writer = threading.Thread(
            target=lambda: (lock.acquire_write(), got_write.set(),
                            lock.release_write()),
        )
        writer.start()
        time.sleep(0.05)  # writer is now queued
        reader = threading.Thread(
            target=lambda: (lock.acquire_read(), got_second_read.set(),
                            lock.release_read()),
        )
        reader.start()
        time.sleep(0.05)
        assert not got_second_read.is_set()  # parked behind the writer
        lock.release_read()
        writer.join(timeout=10)
        reader.join(timeout=10)
        assert got_write.is_set() and got_second_read.is_set()


class TestStripedCache:
    def test_round_trip_and_aggregated_stats(self):
        cache = StripedCache("d", max_entries=64, stripes=4)
        for i in range(20):
            cache.put(f"k{i}", i)
        assert cache.get("k3") == 3
        assert cache.get("nope") is None
        stats = cache.stats()
        assert stats.name == "d"
        assert stats.hits == 1 and stats.misses == 1
        assert len(cache) == 20
        assert cache.invalidate_all() == 20

    def test_single_stripe_degrades_cleanly(self):
        cache = StripedCache("d", max_entries=2, stripes=1)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2  # LRU budget enforced
        assert cache.stats().evictions == 1

    def test_stripes_must_be_positive(self):
        with pytest.raises(ValueError):
            StripedCache("d", max_entries=8, stripes=0)


class TestShardOrdering:
    def test_canonical_order_and_dedup(self):
        shards = [
            TableShard(name, result_entries=4, result_bytes=None)
            for name in ("call", "business", "call", "package")
        ]
        ordered = order_shards(shards)
        assert [s.table for s in ordered] == ["business", "call", "package"]

    def test_server_rejects_unknown_admission(self):
        beas = BEAS(example1_database(), example1_access_schema())
        with pytest.raises(ServingError):
            BEASServer(beas, result_admission="sometimes")


# --------------------------------------------------------------------------- #
# admission policy: admit-on-second-hit
# --------------------------------------------------------------------------- #
class TestAdmissionPolicy:
    def test_once_seen_is_not_cached_twice_seen_is(self, server):
        server.execute(CALL_SQL)
        stats = server.stats()
        assert stats.result_entries == 0  # one-off: doorkeeper only
        assert stats.admission_declines == 1

        server.execute(CALL_SQL)
        stats = server.stats()
        assert stats.result_entries == 1  # second sighting admits
        assert server.execute(CALL_SQL).metrics.served_from_cache

    def test_one_off_queries_do_not_churn_the_lru(self):
        """A scan of distinct one-off queries must not evict the hot
        entry — the ROADMAP's cache-churn complaint."""
        beas = BEAS(example1_database(), example1_access_schema())
        server = beas.serve(result_cache_entries=8, sharded=True)
        server.execute(CALL_SQL)
        server.execute(CALL_SQL)  # admitted
        assert server.execute(CALL_SQL).metrics.served_from_cache

        for day in range(2, 28):  # 26 distinct one-offs through one shard
            server.execute(CALL_SQL.replace("2016-06-01", f"2016-06-{day:02d}"))
        stats = server.stats()
        assert stats.result.evictions == 0
        assert stats.admission_declines >= 26
        assert server.execute(CALL_SQL).metrics.served_from_cache

    def test_always_policy_restores_eager_admission(self):
        beas = BEAS(example1_database(), example1_access_schema())
        server = beas.serve(result_admission="always")
        server.execute(CALL_SQL)
        assert server.execute(CALL_SQL).metrics.served_from_cache
        assert server.stats().admission_declines == 0
        # the doorkeeper is bypassed entirely: no unbounded key log
        for day in range(2, 10):
            server.execute(CALL_SQL.replace("2016-06-01", f"2016-06-{day:02d}"))
        assert all(
            len(shard._seen) == 0 for shard in server.shards().values()
        )

    def test_readmission_after_invalidation_is_immediate(self, server):
        """A recurring query's entry dies with its table version; the
        recompute is admitted at once (the key is already known)."""
        server.execute(CALL_SQL)
        server.execute(CALL_SQL)  # admitted
        server.insert("call", [(901, "100", "991", "2016-06-01", "mesa")])
        recomputed = server.execute(CALL_SQL)
        assert not recomputed.metrics.served_from_cache
        assert server.execute(CALL_SQL).metrics.served_from_cache


# --------------------------------------------------------------------------- #
# the shard-invalidation property
# --------------------------------------------------------------------------- #
def _assert_invariant(server: BEASServer) -> int:
    """No surviving entry's version vector disagrees with the live
    tables; returns the number of entries checked."""
    checked = 0
    generation = server.beas.catalog.schema_generation
    for shard in server.shards().values():
        for key, entry in shard.entries():
            assert entry.schema_generation == generation, key
            for table, version in entry.table_versions.items():
                live = server.database.table(table).version
                assert version == live, (
                    f"stale entry survived in shard {shard.table}: "
                    f"{table} v{version} != live v{live}"
                )
            checked += 1
    return checked


MUTATIONS = {
    "call": lambda i: [(40_000 + i, "100", f"m{i}", "2016-06-01", "cove")],
    "package": lambda i: [
        (41_000 + i, f"6{i:03d}", "c0", "2016-01-01", "2016-12-31", 2016)
    ],
    "business": lambda i: [(f"5{i:03d}", "cafe", "north")],
}
QUERY_POOL = [
    (CALL_SQL, frozenset({"call"})),
    (PACKAGE_SQL, frozenset({"package"})),
    (BUSINESS_SQL, frozenset({"business"})),
    (EXAMPLE2_SQL, frozenset({"call", "package", "business"})),
    (
        "SELECT call.region, business.type FROM call, business "
        "WHERE call.pnum = business.pnum AND call.date = '2016-06-01'",
        frozenset({"call", "business"}),
    ),
]


@pytest.mark.parametrize("seed", range(6))
def test_shard_invalidation_property(seed: int, server):
    """After any mutation sequence: no stale entry survives, and no
    entry on untouched tables is evicted."""
    rng = random.Random(313_000 + seed)
    for sql, _ in QUERY_POOL:  # two sightings: everything admitted
        server.execute(sql)
        server.execute(sql)
    assert _assert_invariant(server) == len(QUERY_POOL)

    for step in range(30):
        roll = rng.random()
        if roll < 0.45:
            table = rng.choice(list(MUTATIONS))
            # re-prime: one sighting readmits anything invalidated earlier
            # (the doorkeeper already knows every pool key)
            for sql, _ in QUERY_POOL:
                server.execute(sql)
            survivors_expected = {
                sql for sql, deps in QUERY_POOL if table not in deps
            }
            try:
                if rng.random() < 0.3:
                    live = server.database.table(table)
                    if live.rows:
                        server.delete(table, [rng.choice(live.rows)])
                else:
                    server.insert(table, MUTATIONS[table](step + seed * 100))
            except MaintenanceError:
                pass
            # no needless eviction: untouched-table entries still hit
            for sql in survivors_expected:
                cached = server.execute(sql)
                assert cached.metrics.served_from_cache, (
                    f"entry for untouched tables was evicted after "
                    f"mutating {table}: {sql[:60]}"
                )
        else:
            sql, _ = rng.choice(QUERY_POOL)
            server.execute(sql)
        _assert_invariant(server)

    # repopulate and do a final sweep over every entry
    for sql, _ in QUERY_POOL:
        server.execute(sql)
        server.execute(sql)
    assert _assert_invariant(server) == len(QUERY_POOL)
    assert server.stats().result.evictions == 0  # capacity never the cause


def test_rejected_batch_still_invalidates_dependents(server):
    """A REJECTed (rolled-back) insert bumps Table.version, so cached
    entries over that table must still be dropped — conservatively."""
    server.execute(PACKAGE_SQL)
    server.execute(PACKAGE_SQL)  # admitted
    violating = [
        (300 + i, "100", f"c{i}", "2016-01-01", "2016-12-31", 2016)
        for i in range(13)  # psi2 allows 12 per (pnum, year)
    ]
    with pytest.raises(MaintenanceError):
        server.insert("package", violating)
    after = server.execute(PACKAGE_SQL)
    assert not after.metrics.served_from_cache
    _assert_invariant(server)


def test_global_lock_mode_still_correct(server):
    """sharded=False maps every table onto one shard: same contract,
    one lock — the benchmark baseline."""
    beas = BEAS(example1_database(), example1_access_schema())
    baseline = BEASServer(beas, sharded=False)
    assert not baseline.sharded
    assert baseline.shard("call") is baseline.shard("package")
    baseline.execute(CALL_SQL)
    baseline.execute(CALL_SQL)
    baseline.execute(PACKAGE_SQL)
    baseline.execute(PACKAGE_SQL)
    assert baseline.execute(CALL_SQL).metrics.served_from_cache
    baseline.insert("call", [(902, "100", "992", "2016-06-01", "dune")])
    assert not baseline.execute(CALL_SQL).metrics.served_from_cache
    assert baseline.execute(PACKAGE_SQL).metrics.served_from_cache
    _assert_invariant(baseline)


def test_unknown_table_requests_leave_no_phantom_shard(server):
    from repro.errors import UnknownTableError

    before = set(server.shards())
    with pytest.raises(UnknownTableError):
        server.insert("nosuch", [(1, "x")])
    with pytest.raises(UnknownTableError):
        server.execute("SELECT x FROM nosuch2")
    after = server.stats()
    assert set(server.shards()) == before
    assert "nosuch" not in after.shards and "nosuch2" not in after.shards
    assert all(s.maintenance_batches == 0 for s in after.shards.values())


def test_multi_shard_read_is_consistent_vector(server):
    """A join's metrics carry one version per dependency table, read
    under simultaneously-held read locks."""
    result = server.execute(EXAMPLE2_SQL)
    versions = result.metrics.table_versions
    assert set(versions) == {"call", "package", "business"}
    for table, version in versions.items():
        assert version == server.database.table(table).version
