"""Access schema discovery tests: mining, profiling, selection."""

import pytest

from repro import BoundedEvaluabilityChecker
from repro.discovery import (
    DiscoveryObjective,
    discover,
    mine_candidates,
    profile_candidate,
    profile_candidates,
    select_constraints,
)

from tests.conftest import EXAMPLE2_SQL, example1_database, example1_schema


WORKLOAD = [
    EXAMPLE2_SQL,
    "SELECT DISTINCT recnum, region FROM call WHERE pnum = '100' AND date = '2016-06-01'",
    "SELECT DISTINCT pid FROM package WHERE pnum = '100' AND year = 2016",
    "SELECT DISTINCT pnum FROM business WHERE type = 'bank' AND region = 'east'",
]


class TestMining:
    def test_candidates_found_for_all_relations(self):
        candidates = mine_candidates(WORKLOAD, example1_schema())
        relations = {c.relation for c in candidates}
        assert relations == {"call", "package", "business"}

    def test_example1_shapes_present(self):
        """The mined candidates include the paper's psi1/psi2/psi3 shapes."""
        candidates = mine_candidates(WORKLOAD, example1_schema())
        shapes = {(c.relation, c.x) for c in candidates}
        assert ("call", ("date", "pnum")) in shapes
        assert ("package", ("pnum", "year")) in shapes
        assert ("business", ("region", "type")) in shapes

    def test_provenance_merged(self):
        candidates = mine_candidates(WORKLOAD, example1_schema())
        call_candidates = [c for c in candidates if c.relation == "call"]
        # the (pnum, date) shape is supported by Q1 and the direct CDR query
        best = max(call_candidates, key=lambda c: len(c.supporting_queries))
        assert len(best.supporting_queries) >= 2

    def test_unparseable_queries_skipped(self):
        candidates = mine_candidates(
            ["SELEKT broken", WORKLOAD[1]], example1_schema()
        )
        assert candidates  # the good query still yields candidates

    def test_sorted_most_supported_first(self):
        candidates = mine_candidates(WORKLOAD, example1_schema())
        supports = [len(c.supporting_queries) for c in candidates]
        assert supports == sorted(supports, reverse=True)


class TestProfiling:
    def test_bound_is_tightest(self):
        db = example1_database()
        candidates = mine_candidates(WORKLOAD, example1_schema())
        target = next(
            c for c in candidates if c.relation == "call" and c.x == ("date", "pnum")
        )
        profiled = profile_candidate(db, target)
        # pnum 100 on 2016-06-01 has calls 1, 2, 7 -> outputs {recnum,region}:
        # {(555,north),(556,south)} = 2 distinct
        assert profiled.observed_max == 2
        assert profiled.n == 2

    def test_slack_inflates_bound(self):
        db = example1_database()
        candidates = mine_candidates(WORKLOAD, example1_schema())
        target = next(c for c in candidates if c.relation == "call")
        plain = profile_candidate(db, target, slack=1.0)
        slacked = profile_candidate(db, target, slack=2.0)
        assert slacked.n == 2 * plain.observed_max

    def test_max_n_filters_loose_candidates(self):
        db = example1_database()
        candidates = mine_candidates(WORKLOAD, example1_schema())
        assert profile_candidates(db, candidates, max_n=0) == []

    def test_storage_cells_accounting(self):
        db = example1_database()
        candidates = mine_candidates(WORKLOAD, example1_schema())
        target = next(
            c for c in candidates if c.relation == "business"
        )
        profiled = profile_candidate(db, target)
        assert profiled.storage_cells == (
            profiled.key_count * len(target.x)
            + profiled.entry_count * len(target.y)
        )

    def test_to_constraint(self):
        db = example1_database()
        candidates = mine_candidates(WORKLOAD, example1_schema())
        profiled = profile_candidate(db, candidates[0])
        constraint = profiled.to_constraint(name="d0")
        assert constraint.name == "d0" and constraint.n == profiled.n


class TestSelection:
    def test_discovery_covers_whole_workload(self):
        db = example1_database()
        result = discover(db, WORKLOAD)
        assert result.covered_queries == {0, 1, 2, 3}
        # and the discovered schema really covers them, per the checker
        checker = BoundedEvaluabilityChecker(db.schema, result.schema)
        for sql in WORKLOAD:
            assert checker.check(sql).covered

    def test_storage_budget_respected(self):
        db = example1_database()
        unbounded = discover(db, WORKLOAD)
        budget = unbounded.storage_used // 2
        constrained = discover(db, WORKLOAD, storage_budget=budget)
        assert constrained.storage_used <= budget
        assert len(constrained.covered_queries) <= len(unbounded.covered_queries)

    def test_zero_budget_selects_nothing(self):
        db = example1_database()
        result = discover(db, WORKLOAD, storage_budget=0)
        assert not result.selected and not result.covered_queries

    def test_weights_prioritise_queries(self):
        """With a tiny budget, the heavily weighted query wins."""
        db = example1_database()
        candidates = mine_candidates(WORKLOAD, example1_schema())
        profiled = profile_candidates(db, candidates)
        # find per-query cheapest coverage cost to build a discriminating budget
        q1_only = select_constraints(
            db, profiled, WORKLOAD,
            weights=[0, 0, 1, 0], storage_budget=None,
        )
        budget = q1_only.storage_used
        heavy_package = select_constraints(
            db, profiled, WORKLOAD,
            weights=[1, 1, 100, 1], storage_budget=budget,
            objective=DiscoveryObjective.COVERAGE,
        )
        assert 2 in heavy_package.covered_queries

    def test_coverage_per_storage_objective(self):
        db = example1_database()
        result = discover(
            db, WORKLOAD, objective=DiscoveryObjective.COVERAGE_PER_STORAGE
        )
        assert result.covered_queries == {0, 1, 2, 3}

    def test_min_bound_objective_prefers_tight_bounds(self):
        db = example1_database()
        plain = discover(db, WORKLOAD, objective=DiscoveryObjective.COVERAGE)
        tight = discover(db, WORKLOAD, objective=DiscoveryObjective.MIN_BOUND)
        assert tight.covered_queries == plain.covered_queries
        assert tight.total_access_bound <= plain.total_access_bound

    def test_weights_length_validated(self):
        db = example1_database()
        with pytest.raises(ValueError):
            discover(db, WORKLOAD, weights=[1.0])

    def test_describe(self):
        db = example1_database()
        text = discover(db, WORKLOAD).describe()
        assert "constraints" in text and "covering" in text

    def test_discovered_schema_conforms_to_data(self):
        from repro.access.conformance import check_database

        db = example1_database()
        result = discover(db, WORKLOAD)
        assert check_database(db, result.schema).conforms
