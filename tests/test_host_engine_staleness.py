"""Regression tests: engine statistics freshness under data updates.

``BEAS.host_engine()`` caches engines by ``profile.name``, and
``insert``/``delete`` historically invalidated statistics only on the
engines present at call time; the statistics cache itself was keyed on
the table's *row count*, so an insert+delete sequence that left the
cardinality unchanged (e.g. routed directly through
``MaintenanceManager``) served stale statistics. The cache is now keyed
on :attr:`Table.version`, a monotonic mutation counter, which makes
every engine — whenever it was created, whoever mutated the data —
observe fresh statistics.
"""

from __future__ import annotations

from repro import BEAS, ConventionalEngine
from repro.engine.profiles import MYSQL
from repro.maintenance.incremental import MaintenanceManager

NEW_CALLS = [
    (801, "100", "881", "2016-07-01", "fresh-a"),
    (802, "101", "882", "2016-07-01", "fresh-b"),
]


class TestProfileEngineFreshness:
    def test_engine_created_after_insert_sees_fresh_statistics(self, ex1_beas):
        before = len(ex1_beas.database.table("call"))
        ex1_beas.insert("call", NEW_CALLS)
        engine = ex1_beas.host_engine(MYSQL)  # created *after* the insert
        stats = engine.statistics()["call"]
        assert stats.row_count == before + 2
        assert stats.column("region").distinct_count >= 2

    def test_engine_created_before_insert_is_invalidated(self, ex1_beas):
        engine = ex1_beas.host_engine(MYSQL)
        engine.statistics()  # populate the cache
        ex1_beas.insert("call", NEW_CALLS)
        stats = engine.statistics()["call"]
        assert stats.row_count == len(ex1_beas.database.table("call"))

    def test_same_cardinality_update_does_not_serve_stale_statistics(
        self, ex1_beas
    ):
        """Insert+delete with net-zero row count, routed *around* the BEAS
        facade: the row-count-keyed cache of the seed served stale numbers
        here; the version-keyed cache must not."""
        engine = ex1_beas.host_engine()
        old_distinct = engine.statistics()["call"].column("region").distinct_count
        manager = MaintenanceManager(ex1_beas.catalog)
        victims = ex1_beas.database.table("call").rows[:2]
        manager.insert("call", NEW_CALLS)
        manager.delete("call", victims)
        assert len(ex1_beas.database.table("call")) == 7  # unchanged count
        fresh = engine.statistics()["call"]
        regions = {
            row[4] for row in ex1_beas.database.table("call").rows
        }
        assert fresh.column("region").distinct_count == len(regions)
        assert fresh.column("region").distinct_count != old_distinct

    def test_table_version_is_monotonic(self, ex1_db):
        table = ex1_db.table("call")
        version = table.version
        table.insert((990, "100", "995", "2016-08-01", "vtest"))
        assert table.version > version
        version = table.version
        table.delete_rows([(990, "100", "995", "2016-08-01", "vtest")])
        assert table.version > version
        # deleting nothing does not bump
        version = table.version
        table.delete_rows([])
        assert table.version == version

    def test_statistics_still_cached_between_reads(self, ex1_beas):
        """The fix must not break caching: identical versions reuse stats."""
        engine = ex1_beas.host_engine()
        first = engine.statistics()["call"]
        second = engine.statistics()["call"]
        assert first is second

    def test_fresh_engine_shares_no_cache_with_old_one(self, ex1_beas):
        old = ConventionalEngine(ex1_beas.database)
        old.statistics()
        ex1_beas.insert("call", NEW_CALLS)
        fresh = ConventionalEngine(ex1_beas.database)
        assert (
            fresh.statistics()["call"].row_count
            == len(ex1_beas.database.table("call"))
        )
