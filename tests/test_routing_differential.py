"""Router-vs-static differential suite: routing is a latency decision.

The learned executor router (``repro.engine.router``) picks one of four
observationally-identical execution modes per covered query. Whatever it
picks — and however wrong its cost model is — the answer must be
bit-identical to every static configuration: same rows in the same
order, same ``tuples_fetched`` accounting, same per-fetch breakdown.
This suite replays the seeded random SPJA workload of
``test_fuzz_differential`` through a ``routing="learned"`` server and
compares every scenario against **four** static oracles (row, columnar,
pooled/plan, pooled/batch), with exploration forced fully on
(``epsilon=1.0``) and fully off (``epsilon=0.0``), plus a
model-poisoning pass where the cost model is pre-trained on absurd
latencies.

The wiring surface (env var, Session/Query/call precedence, unknown
route rejection, cost-aware cache admission, serve-stats counters) is
covered at the bottom.
"""

from __future__ import annotations

import random

import pytest

from repro import BEAS, Session
from repro.beas.result import ExecutionMode
from repro.beas.session import ExecutionOptions
from repro.errors import BEASError

from tests.conftest import example1_access_schema
from tests.test_columnar_differential import _inject_nulls
from tests.test_fuzz_differential import (
    random_example1_db,
    random_example1_query,
)
from tests.test_parallel_differential import _covered_queries, _fetch_ops

DIFFERENTIAL_SEEDS = 9
RANDOM_QUERIES_PER_SEED = 3
COVERED_QUERIES_PER_SEED = 3  # templates guaranteed to take the bounded path
QUERIES_PER_SEED = RANDOM_QUERIES_PER_SEED + COVERED_QUERIES_PER_SEED
EPSILONS = (1.0, 0.0)  # explore on every decision, then pure greedy
_SCENARIOS = 0  # learned-vs-four-static comparisons performed


def _static_oracles(db, dedup: bool, rows_per_batch: int):
    """The four static configurations the router chooses between."""
    common = dict(dedup_keys=dedup, rows_per_batch=rows_per_batch)
    return {
        "row": BEAS(
            db, example1_access_schema(), executor="row", parallelism=1,
            **common,
        ),
        "columnar": BEAS(
            db, example1_access_schema(), executor="columnar", parallelism=1,
            **common,
        ),
        "pooled-plan": BEAS(
            db, example1_access_schema(), executor="columnar", parallelism=2,
            parallel_dispatch="plan", **common,
        ),
        "pooled-batch": BEAS(
            db, example1_access_schema(), executor="columnar", parallelism=2,
            parallel_dispatch="batch", **common,
        ),
    }


def _compare_learned(server, oracles, sql: str) -> ExecutionMode:
    global _SCENARIOS
    learned = server.execute(sql, routing="learned", use_result_cache=False)
    statics = {name: beas.execute(sql) for name, beas in oracles.items()}

    for name, static in statics.items():
        assert learned.mode == static.mode, (sql, name)
        assert learned.columns == static.columns, (sql, name)
        assert learned.rows == static.rows, (sql, name)
        assert (
            learned.metrics.tuples_fetched == static.metrics.tuples_fetched
        ), (sql, name)
        assert (
            learned.metrics.rows_output == static.metrics.rows_output
        ), (sql, name)

    if learned.mode is ExecutionMode.BOUNDED:
        # the route actually taken is stamped and is one the router owns
        assert learned.metrics.routed_mode in (
            "row", "columnar", "pooled-plan", "pooled-batch",
        ), sql
        # the §3 per-fetch breakdown matches the matching static config
        twin = statics[learned.metrics.routed_mode]
        assert _fetch_ops(learned.metrics) == _fetch_ops(twin.metrics), sql
    else:
        # conventional/fallback executions never go through the router
        assert learned.metrics.routed_mode == "", sql
    _SCENARIOS += 1
    return learned.mode


@pytest.mark.parametrize("seed", range(DIFFERENTIAL_SEEDS))
def test_learned_routing_vs_static_differential(seed: int):
    before = _SCENARIOS
    rng = random.Random(771_300 + seed)
    db = random_example1_db(rng)
    if seed % 2:
        _inject_nulls(db, rng)
    queries = [
        random_example1_query(rng)[0] for _ in range(RANDOM_QUERIES_PER_SEED)
    ] + _covered_queries(rng)
    rows_per_batch = rng.choice([1, 2, 3, 7])
    dedup = bool(seed % 2)

    oracles = _static_oracles(db, dedup, rows_per_batch)
    learned_beas = BEAS(
        db,
        example1_access_schema(),
        dedup_keys=dedup,
        executor="columnar",
        rows_per_batch=rows_per_batch,
        parallelism=2,
    )
    try:
        server = learned_beas.serve()
        modes = []
        for epsilon in EPSILONS:
            server.router.epsilon = epsilon
            modes += [
                _compare_learned(server, oracles, sql) for sql in queries
            ]
        assert ExecutionMode.BOUNDED in modes
        stats = server.stats().routing
        assert stats is not None
        assert stats.decisions == modes.count(ExecutionMode.BOUNDED)
        # every decision was observed back into the model (clean runs) or
        # skipped as a pool fallback — never silently dropped
        assert stats.observations + stats.fallback_skips == stats.decisions
        assert sum(stats.routed.values()) == stats.decisions
        # epsilon=1.0 ran first: each covered decision in that half explored
        assert stats.explorations > 0
    finally:
        learned_beas.close()
        for oracle in oracles.values():
            oracle.close()
    assert _SCENARIOS - before == QUERIES_PER_SEED * len(EPSILONS)


def test_routing_differential_scenario_floor():
    """The acceptance bar: >= 100 seeded learned-vs-static scenarios
    (each parametrized run above asserts its exact share)."""
    total = DIFFERENTIAL_SEEDS * QUERIES_PER_SEED * len(EPSILONS)
    assert total >= 100, f"configured for only {total} scenarios"


# --------------------------------------------------------------------------- #
# model poisoning: a wrong cost model can only cost latency, never answers
# --------------------------------------------------------------------------- #
def test_poisoned_cost_model_never_changes_answers():
    from repro.engine.router import ROUTES, routing_features

    rng = random.Random(771_999)
    db = random_example1_db(rng)
    queries = _covered_queries(rng)
    oracle = BEAS(
        db, example1_access_schema(), executor="row", parallelism=1
    )
    beas = BEAS(
        db, example1_access_schema(), executor="columnar",
        rows_per_batch=3, parallelism=2,
    )
    try:
        server = beas.serve()
        server.router.epsilon = 0.0  # force pure exploitation of the poison
        # pre-train every model with absurd, inverted latencies so the
        # greedy pick is maximally wrong for every template
        from repro.engine.metrics import ExecutionMetrics

        for sql in queries:
            plan = beas.check(sql).plan
            features = routing_features(
                plan, {}, rows_per_batch=3, parallelism=2
            )
            fingerprint = f"poison:{sql[:32]}"
            for route, seconds in zip(ROUTES, (900.0, 1e-9, 450.0, 1e-9)):
                for _ in range(8):
                    server.router.observe(
                        fingerprint, route, features,
                        ExecutionMetrics(seconds=seconds),
                    )
        for sql in queries:
            expected = oracle.execute(sql)
            for _ in range(3):  # greedy picks stay pinned to the poison
                got = server.execute(
                    sql, routing="learned", use_result_cache=False
                )
                assert got.rows == expected.rows, sql
                assert (
                    got.metrics.tuples_fetched
                    == expected.metrics.tuples_fetched
                ), sql
    finally:
        beas.close()
        oracle.close()


# --------------------------------------------------------------------------- #
# wiring: env var, Session/Query/call precedence, validation
# --------------------------------------------------------------------------- #
def _small_session(**kwargs) -> Session:
    rng = random.Random(771_001)
    return Session(random_example1_db(rng), example1_access_schema(), **kwargs)


_COVERED_SQL = (
    "SELECT DISTINCT recnum, region FROM call "
    "WHERE pnum = '2025550001' AND date = '2016-01-02'"
)


class TestRoutingWiring:
    def test_env_var_enables_learned_routing(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROUTING", "learned")
        with _small_session() as session:
            result = session.run(_COVERED_SQL, use_result_cache=False)
            assert result.mode is ExecutionMode.BOUNDED
            assert result.metrics.routed_mode != ""

    def test_session_layer_routing(self, monkeypatch):
        monkeypatch.delenv("BEAS_ROUTING", raising=False)
        with _small_session(
            options=ExecutionOptions(routing="learned")
        ) as session:
            result = session.run(_COVERED_SQL, use_result_cache=False)
            assert result.metrics.routed_mode != ""

    def test_call_layer_overrides_session(self):
        with _small_session(
            options=ExecutionOptions(routing="learned")
        ) as session:
            result = session.run(
                _COVERED_SQL, routing="static", use_result_cache=False
            )
            assert result.metrics.routed_mode == ""
            assert result.metrics.routing_explored is False

    def test_query_layer_enables_routing(self):
        with _small_session() as session:
            query = session.query(_COVERED_SQL).with_options(
                routing="learned"
            )
            result = query.run(use_result_cache=False)
            assert result.metrics.routed_mode != ""

    def test_static_default_never_routes(self, monkeypatch):
        monkeypatch.delenv("BEAS_ROUTING", raising=False)
        with _small_session() as session:
            result = session.run(_COVERED_SQL, use_result_cache=False)
            assert result.metrics.routed_mode == ""
            assert session.server.stats().routing.decisions == 0

    def test_unknown_routing_rejected_at_call(self):
        with _small_session() as session:
            with pytest.raises(BEASError, match="routing"):
                session.run(_COVERED_SQL, routing="oracle")

    def test_bad_env_routing_fails_at_construction(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROUTING", "magic")
        with pytest.raises(BEASError, match="BEAS_ROUTING"):
            _small_session()

    def test_bad_env_epsilon_fails_at_serve_construction(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROUTING_EPSILON", "fast")
        session = _small_session()
        try:
            with pytest.raises(BEASError, match="BEAS_ROUTING_EPSILON"):
                session.server  # the server builds the router
        finally:
            monkeypatch.delenv("BEAS_ROUTING_EPSILON")
            session.close()

    def test_routed_executor_rejects_unknown_route(self):
        rng = random.Random(771_002)
        beas = BEAS(random_example1_db(rng), example1_access_schema())
        with pytest.raises(BEASError, match="route"):
            beas.routed_executor("teleport")

    def test_serial_engine_routes_serial_only(self):
        """parallelism=1: the router must never pick a pooled route."""
        rng = random.Random(771_003)
        beas = BEAS(
            random_example1_db(rng), example1_access_schema(), parallelism=1
        )
        server = beas.serve()
        server.router.epsilon = 1.0  # exploration can only reach its routes
        for _ in range(8):
            result = server.execute(
                _COVERED_SQL, routing="learned", use_result_cache=False
            )
            assert result.metrics.routed_mode in ("row", "columnar")


# --------------------------------------------------------------------------- #
# cost-aware result-cache admission
# --------------------------------------------------------------------------- #
class TestCostAwareAdmission:
    def test_admission_declined_when_rerun_is_cheaper(self):
        """With the measured lookup cost pinned absurdly high, no bounded
        result is worth caching — repeats must re-execute."""
        with _small_session(
            options=ExecutionOptions(routing="learned")
        ) as session:
            session.server.router.note_lookup(10.0)  # lookups "cost" 10s
            first = session.run(_COVERED_SQL)
            assert first.mode is ExecutionMode.BOUNDED
            # repeats keep re-executing: the cost-aware check runs before
            # the doorkeeper, so the answer is never even offered to it
            for _ in range(3):
                repeat = session.run(_COVERED_SQL)
                assert repeat.metrics.decision_provenance != "result-cache"
            stats = session.server.stats().routing
            assert stats.admission_declines >= 4

    def test_admission_allows_caching_by_default(self):
        """No lookup-cost estimate yet -> admit (the static behaviour)."""
        with _small_session(
            options=ExecutionOptions(routing="learned")
        ) as session:
            first = session.run(_COVERED_SQL)
            assert first.mode is ExecutionMode.BOUNDED
            second = session.run(_COVERED_SQL)  # doorkeeper: admits on 2nd
            third = session.run(_COVERED_SQL)
            assert third.metrics.decision_provenance == "result-cache"
            assert third.rows == first.rows
            assert third.metrics.seconds > 0  # real measured latency

    def test_router_unit_admission_rule(self):
        from repro.engine.router import ExecutorRouter

        router = ExecutorRouter(parallelism=1)
        assert router.should_admit(0.001)  # no estimate yet: admit
        router.note_lookup(0.5)
        assert not router.should_admit(0.001)  # re-run beats a lookup
        assert router.should_admit(2.0)  # expensive result: cache it
        stats = router.stats()
        assert stats.admission_checks == 3
        assert stats.admission_declines == 1
        assert stats.lookup_cost_seconds == pytest.approx(0.5)
