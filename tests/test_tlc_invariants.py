"""Deeper TLC generator invariants: headroom under every bound, planted
chain integrity, and query-metadata hygiene."""

from repro.catalog.statistics import group_cardinality
from repro.workloads.tlc import (
    BUSINESS_TYPES,
    REGIONS,
    tlc_access_schema,
    tlc_queries,
)


class TestBoundHeadroom:
    """The generator must stay comfortably below every declared N, so that
    scaled-up instances (the Fig. 4 sweep generates up to scale 200) keep
    conforming — load per bucket is scale-independent by construction."""

    def test_every_constraint_has_headroom(self, tlc_small):
        db = tlc_small.database
        for constraint in tlc_access_schema():
            table = db.table(constraint.relation)
            observed = group_cardinality(table, constraint.x, constraint.y)
            # psi8 (N=1, one customer row per pnum) is tight by design
            assert observed <= max(constraint.n * 0.5, 1), (
                f"{constraint.name}: observed {observed} too close to "
                f"N={constraint.n}"
            )

    def test_customer_is_exactly_keyed(self, tlc_small):
        table = tlc_small.database.table("customer")
        observed = group_cardinality(table, ["pnum"], ["segment"])
        assert observed == 1  # psi8's N=1 is tight by construction


class TestPlantedChain:
    def test_planted_businesses_have_the_q1_package(self, tlc_small):
        db = tlc_small.database
        params = tlc_small.params
        planted = [
            row[0]
            for row in db.table("business").rows
            if row[1] == params.t0 and row[2] == params.r0
        ][:5]
        package_rows = db.table("package").rows
        for pnum in planted:
            spanning = [
                row
                for row in package_rows
                if row[1] == pnum
                and row[2] == params.c0
                and row[3] <= params.d0 <= row[4]
                and row[5] == params.year
            ]
            assert spanning, f"planted {pnum} lacks the c0 package"

    def test_x0_receives_calls_on_d0(self, tlc_small):
        db = tlc_small.database
        params = tlc_small.params
        callers = {
            row[1]
            for row in db.table("call").rows
            if row[2] == params.x0 and row[3] == params.d0
        }
        assert len(callers) >= 5

    def test_planted_rows_per_fact_table(self, tlc_small):
        db = tlc_small.database
        params = tlc_small.params
        sms = [
            row for row in db.table("sms").rows
            if row[1] == params.p0 and row[3] == params.d0
        ]
        assert len(sms) >= 3
        usage = [
            row for row in db.table("data_usage").rows
            if row[1] == params.p0 and row[3] == params.m0
        ]
        assert len(usage) >= 3
        complaints = [
            row for row in db.table("complaint").rows if row[1] == params.p0
        ]
        assert len(complaints) >= 2


class TestValuePools:
    def test_regions_and_types_within_pools(self, tlc_small):
        db = tlc_small.database
        call_regions = {row[4] for row in db.table("call").rows}
        assert call_regions <= set(REGIONS)
        business_types = {row[1] for row in db.table("business").rows}
        assert business_types <= set(BUSINESS_TYPES)

    def test_dates_within_generator_window(self, tlc_small):
        dates = {row[3] for row in tlc_small.database.table("call").rows}
        assert all("2016-05-01" <= d <= "2016-06-29" for d in dates)
        assert tlc_small.params.d0 in dates

    def test_ids_unique_per_fact_table(self, tlc_small):
        db = tlc_small.database
        for table_name, position in (
            ("call", 0), ("sms", 0), ("data_usage", 0),
            ("package", 0), ("bill", 0), ("complaint", 0),
        ):
            ids = [row[position] for row in db.table(table_name).rows]
            assert len(ids) == len(set(ids)), table_name


class TestQueryMetadata:
    def test_names_unique_and_ordered(self, tlc_small):
        queries = tlc_queries(tlc_small.params)
        names = [q.name for q in queries]
        assert names == [f"Q{i}" for i in range(1, 12)]

    def test_descriptions_nonempty(self, tlc_small):
        for query in tlc_queries(tlc_small.params):
            assert query.description.strip()

    def test_sql_parses(self, tlc_small):
        from repro.sql.parser import parse

        for query in tlc_queries(tlc_small.params):
            parse(query.sql)

    def test_constants_embedded(self, tlc_small):
        params = tlc_small.params
        q1 = tlc_queries(params)[0].sql
        for constant in (params.t0, params.r0, params.d0, params.c0):
            assert str(constant) in q1
