"""Cross-process differential suite: row vs columnar vs pooled.

The engine pool (``repro.engine.pool``) must be observationally
identical to the in-process executors: same answer rows in the same
order, same ``tuples_fetched`` accounting (including ``dedup_keys``
semantics, whose per-worker key maps are merged deterministically), and
the same per-fetch operation breakdown. This suite replays the seeded
random SPJA workload of ``test_fuzz_differential`` through **four**
executions side by side —

* ``row`` (in-process, tuple-at-a-time),
* ``columnar`` (in-process batches),
* ``pooled/plan`` (whole plans shipped to worker processes),
* ``pooled/batch`` (fetch input batches fanned out across workers) —

including NULL-enriched instances, and asserts exact equality per
scenario. Construction-time validation of the new engine options
(``BEASError`` for bad ``rows_per_batch``/``parallelism``) and the
mode-wiring surface (env var, profile default, serving overrides,
async front end) are covered at the bottom.
"""

from __future__ import annotations

import random

import pytest

from repro import BEAS, EngineProfile
from repro.beas.result import ExecutionMode
from repro.errors import BEASError

from tests.conftest import example1_access_schema
from tests.test_columnar_differential import _inject_nulls
from tests.test_fuzz_differential import (
    random_example1_db,
    random_example1_query,
)

DIFFERENTIAL_SEEDS = 13
RANDOM_QUERIES_PER_SEED = 4
COVERED_QUERIES_PER_SEED = 3  # templates guaranteed to take the bounded path
QUERIES_PER_SEED = RANDOM_QUERIES_PER_SEED + COVERED_QUERIES_PER_SEED
DEDUP_MODES = (False, True)
_SCENARIOS = 0  # four-way comparisons performed


def _covered_queries(rng: random.Random) -> list[str]:
    """Three templates the A0 schema always covers (psi1/psi2/psi3), so
    every seed exercises the bounded pooled path — the random generator
    alone can land on conventional-only batches."""
    from tests.test_fuzz_differential import DATES, PNUMS, TYPES, REGIONS

    pnum, date = rng.choice(PNUMS), rng.choice(DATES)
    return [
        f"SELECT DISTINCT recnum, region FROM call "
        f"WHERE pnum = '{pnum}' AND date = '{date}'",
        f"SELECT pid FROM package WHERE pnum = '{pnum}' "
        f"AND year = {rng.choice([2015, 2016])}",
        f"SELECT DISTINCT call.recnum FROM call, business "
        f"WHERE business.type = '{rng.choice(TYPES)}' "
        f"AND business.region = '{rng.choice(REGIONS)}' "
        f"AND business.pnum = call.pnum AND call.date = '{date}'",
    ]


def _fetch_ops(metrics):
    return [
        (op.label, op.tuples_in, op.tuples_out)
        for op in metrics.operations
        if op.label.startswith("fetch[")
    ]


def _compare_four(
    row_beas, col_beas, plan_beas, batch_beas, sql: str
) -> ExecutionMode:
    global _SCENARIOS
    row = row_beas.execute(sql)
    col = col_beas.execute(sql)
    pooled_plan = plan_beas.execute(sql)
    pooled_batch = batch_beas.execute(sql)
    runs = (row, col, pooled_plan, pooled_batch)

    # answers: mode, columns, and even the row order must agree exactly
    assert all(r.mode == row.mode for r in runs), sql
    assert all(r.columns == row.columns for r in runs), sql
    assert all(r.rows == row.rows for r in runs), sql

    # the §3 accounting: identical tuples fetched (dedup-sensitive) and
    # identical output cardinality in every placement
    fetched = row.metrics.tuples_fetched
    assert all(r.metrics.tuples_fetched == fetched for r in runs), sql
    assert all(r.metrics.rows_output == row.metrics.rows_output for r in runs), sql

    if row.mode is ExecutionMode.BOUNDED:
        # per-fetch operation breakdown: pooled executions report the
        # same fetch ops with the same input/output counts as columnar
        col_fetches = _fetch_ops(col.metrics)
        assert _fetch_ops(row.metrics) == col_fetches, sql
        assert _fetch_ops(pooled_plan.metrics) == col_fetches, sql
        assert _fetch_ops(pooled_batch.metrics) == col_fetches, sql
        assert (
            pooled_plan.metrics.intermediate_rows
            == pooled_batch.metrics.intermediate_rows
            == row.metrics.intermediate_rows
        ), sql
        # pooled runs carry the pool surface in their metrics
        assert pooled_plan.metrics.pool_workers == 2, sql
        assert pooled_batch.metrics.pool_workers == 2, sql
        assert pooled_plan.metrics.rows_per_batch > 0, sql
    _SCENARIOS += 1
    return row.mode


@pytest.mark.parametrize("seed", range(DIFFERENTIAL_SEEDS))
def test_row_vs_columnar_vs_pooled_differential(seed: int):
    before = _SCENARIOS
    rng = random.Random(737_100 + seed)
    db = random_example1_db(rng)
    if seed % 2:
        _inject_nulls(db, rng)
    queries = [
        random_example1_query(rng)[0] for _ in range(RANDOM_QUERIES_PER_SEED)
    ] + _covered_queries(rng)
    rows_per_batch = rng.choice([1, 2, 3, 7])
    for dedup in DEDUP_MODES:
        row_beas = BEAS(
            db,
            example1_access_schema(),
            dedup_keys=dedup,
            executor="row",
            parallelism=1,
        )
        col_beas = BEAS(
            db,
            example1_access_schema(),
            dedup_keys=dedup,
            executor="columnar",
            rows_per_batch=rows_per_batch,
            parallelism=1,
        )
        plan_beas = BEAS(
            db,
            example1_access_schema(),
            dedup_keys=dedup,
            executor="columnar",
            rows_per_batch=rows_per_batch,
            parallelism=2,
            parallel_dispatch="plan",
        )
        batch_beas = BEAS(
            db,
            example1_access_schema(),
            dedup_keys=dedup,
            executor="columnar",
            rows_per_batch=rows_per_batch,
            parallelism=2,
            parallel_dispatch="batch",
        )
        try:
            modes = [
                _compare_four(row_beas, col_beas, plan_beas, batch_beas, sql)
                for sql in queries
            ]
            # the covered templates guarantee bounded work every seed, and
            # the plan route must really have run on workers (batch
            # fan-out only triggers on multi-chunk fetches, so no floor
            # is asserted for it here — test_batch_dispatch_fans_out
            # pins that down)
            assert ExecutionMode.BOUNDED in modes
            plan_stats = plan_beas.pool_stats()
            assert plan_stats is not None
            assert plan_stats.plans_dispatched > 0
        finally:
            plan_beas.close()
            batch_beas.close()
    assert _SCENARIOS - before == QUERIES_PER_SEED * len(DEDUP_MODES)


def test_differential_scenario_floor():
    """The acceptance bar: >= 100 seeded cross-process scenarios (each
    parametrized run above asserts its exact share)."""
    total = DIFFERENTIAL_SEEDS * QUERIES_PER_SEED * len(DEDUP_MODES)
    assert total >= 100, f"configured for only {total} scenarios"


# --------------------------------------------------------------------------- #
# batch fan-out specifics
# --------------------------------------------------------------------------- #
def _join_workload():
    """A two-fetch plan whose second fetch sees a multi-chunk input, so
    ``dispatch="batch"`` genuinely fans chunks out across workers."""
    from repro import (
        AccessConstraint,
        AccessSchema,
        Database,
        DatabaseSchema,
        DataType,
        TableSchema,
    )

    schema = DatabaseSchema(
        [
            TableSchema(
                "t",
                [
                    ("k", DataType.STRING),
                    ("g", DataType.STRING),
                    ("u", DataType.STRING),
                ],
                keys=[("u",)],
            ),
            TableSchema(
                "s",
                [("g", DataType.STRING), ("v", DataType.STRING)],
                keys=[("g", "v")],
            ),
        ]
    )
    db = Database(schema)
    for i in range(48):
        db.insert("t", ("k", f"g{i % 6}", f"u{i:04d}"))
    for i in range(6):
        for j in range(2):
            db.insert("s", (f"g{i}", f"v{i}{j}"))
    access = AccessSchema(
        [
            AccessConstraint("t", ["k"], ["g", "u"], 64, name="t_by_k"),
            AccessConstraint("s", ["g"], ["v"], 4, name="s_by_g"),
        ]
    )
    sql = (
        "SELECT t.u, s.v FROM t, s "
        "WHERE t.k = 'k' AND t.g = s.g ORDER BY t.u, s.v"
    )
    return db, access, sql


@pytest.mark.parametrize("dedup", DEDUP_MODES)
def test_batch_dispatch_fans_out(dedup: bool):
    from repro import AccessConstraint  # noqa: F401 - imported via helper

    db, access, sql = _join_workload()
    baseline = BEAS(
        db, access, executor="columnar", rows_per_batch=4,
        dedup_keys=dedup, parallelism=1,
    ).execute(sql)
    pooled = BEAS(
        db, access, executor="columnar", rows_per_batch=4,
        dedup_keys=dedup, parallelism=2, parallel_dispatch="batch",
    )
    try:
        result = pooled.execute(sql)
        assert result.rows == baseline.rows
        assert result.metrics.tuples_fetched == baseline.metrics.tuples_fetched
        # the second fetch's 48-row input splits into 12 chunks; at least
        # part of them must have run on worker processes
        assert result.metrics.pool_batches > 0
        stats = pooled.pool_stats()
        assert stats is not None and stats.chunks_dispatched > 0
        assert stats.plans_dispatched == 0  # batch dispatch never ships plans
    finally:
        pooled.close()


def test_row_default_with_pool_matches_row():
    """BEAS(executor="row", parallelism>=2): pooled execution upgrades to
    the columnar wire format but answers must match row mode exactly."""
    db, access, sql = _join_workload()
    row = BEAS(db, access, executor="row", parallelism=1).execute(sql)
    pooled = BEAS(db, access, executor="row", parallelism=2)
    try:
        result = pooled.execute(sql)
        assert result.rows == row.rows
        assert result.metrics.tuples_fetched == row.metrics.tuples_fetched
        assert result.metrics.pool_workers == 2
    finally:
        pooled.close()


# --------------------------------------------------------------------------- #
# construction-time validation (BEASError, satellite)
# --------------------------------------------------------------------------- #
class TestConstructionValidation:
    def _db(self):
        from repro import Database, DatabaseSchema, DataType, TableSchema

        return Database(
            DatabaseSchema([TableSchema("t", [("a", DataType.INT)])])
        )

    @pytest.mark.parametrize("bad", [0, -1, -4096])
    def test_rows_per_batch_must_be_positive(self, bad):
        with pytest.raises(BEASError, match="rows_per_batch"):
            BEAS(self._db(), rows_per_batch=bad)

    @pytest.mark.parametrize("bad", [2.5, "4096", True])
    def test_rows_per_batch_must_be_int(self, bad):
        with pytest.raises(BEASError, match="rows_per_batch"):
            BEAS(self._db(), rows_per_batch=bad)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_parallelism_must_be_positive(self, bad):
        with pytest.raises(BEASError, match="parallelism"):
            BEAS(self._db(), parallelism=bad)

    @pytest.mark.parametrize("bad", [1.5, "two", False])
    def test_parallelism_must_be_int(self, bad):
        with pytest.raises(BEASError, match="parallelism"):
            BEAS(self._db(), parallelism=bad)

    def test_dispatch_must_be_known(self):
        with pytest.raises(BEASError, match="dispatch"):
            BEAS(self._db(), parallel_dispatch="sideways")

    def test_bad_env_parallelism(self, monkeypatch):
        monkeypatch.setenv("BEAS_PARALLELISM", "many")
        with pytest.raises(BEASError, match="BEAS_PARALLELISM"):
            BEAS(self._db())

    def test_bad_env_rows_per_batch(self, monkeypatch):
        monkeypatch.setenv("BEAS_ROWS_PER_BATCH", "lots")
        with pytest.raises(BEASError, match="BEAS_ROWS_PER_BATCH"):
            BEAS(self._db())

    def test_validation_happens_at_construction_not_execution(self):
        # the error surfaces from BEAS(...) itself, before any query
        with pytest.raises(BEASError):
            BEAS(self._db(), rows_per_batch=0, executor="row")

    def test_engine_pool_rejects_bad_worker_count(self):
        from repro import EnginePool

        with pytest.raises(BEASError):
            EnginePool(0)
        with pytest.raises(BEASError):
            EnginePool("four")

    def test_profile_validates_parallelism(self):
        with pytest.raises(ValueError):
            EngineProfile(name="bad", parallelism=-1)


# --------------------------------------------------------------------------- #
# mode wiring: env var, profile default, serving layer, async front end
# --------------------------------------------------------------------------- #
class TestPoolWiring:
    def test_env_default_resolution(self, monkeypatch):
        from repro.engine.pool import resolve_parallelism

        monkeypatch.delenv("BEAS_PARALLELISM", raising=False)
        assert resolve_parallelism(None) == 1
        assert resolve_parallelism(None, default=3) == 3
        monkeypatch.setenv("BEAS_PARALLELISM", "4")
        assert resolve_parallelism(None) == 4
        assert resolve_parallelism(2) == 2  # explicit wins over env

    def test_profile_parallelism_is_the_fallback_default(self, monkeypatch):
        monkeypatch.delenv("BEAS_PARALLELISM", raising=False)
        db, access, _ = _join_workload()
        profile = EngineProfile(name="pg-par", parallelism=2)
        beas = BEAS(db, access, host_profile=profile)
        try:
            assert beas.parallelism == 2
        finally:
            beas.close()

    def test_pool_is_lazy_and_close_is_idempotent(self):
        db, access, sql = _join_workload()
        beas = BEAS(db, access, parallelism=2)
        assert beas.pool is None  # nothing forked yet
        result = beas.execute(sql)
        assert beas.pool is not None
        assert result.metrics.pool_workers == 2
        beas.close()
        beas.close()
        # pooled execution transparently restarts after close
        again = beas.execute(sql)
        assert again.rows == result.rows
        beas.close()

    def test_serving_layer_reports_pool_stats(self):
        db, access, sql = _join_workload()
        beas = BEAS(db, access, parallelism=2)
        try:
            server = beas.serve()
            result = server.execute(sql)
            assert result.metrics.pool_workers == 2
            stats = server.stats()
            assert stats.pool is not None
            assert stats.pool.workers == 2
            assert "engine pool" in stats.describe()
        finally:
            beas.close()

    def test_async_server_dispatches_through_the_pool(self):
        import asyncio
        from collections import Counter

        db, access, sql = _join_workload()
        baseline = BEAS(db, access, parallelism=1).execute(sql)
        beas = BEAS(db, access, parallelism=3)

        async def scenario():
            async with beas.serve_async(max_workers=3) as aserver:
                results = await asyncio.gather(
                    *(
                        aserver.execute(sql, use_result_cache=False)
                        for _ in range(6)
                    )
                )
                return results

        try:
            results = asyncio.run(scenario())
            for result in results:
                assert Counter(result.rows) == Counter(baseline.rows)
            stats = beas.pool_stats()
            assert stats is not None and stats.plans_dispatched > 0
        finally:
            beas.close()
