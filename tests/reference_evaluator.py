"""An independent brute-force SQL evaluator used as a test oracle.

Deliberately shares no code with ``repro.engine``: it enumerates the full
cartesian product of the FROM tables and evaluates expressions with a
plain recursive interpreter. Slow but obviously correct on small inputs —
mismatches against the real engine indicate an engine bug.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.sql import ast
from repro.sql.parser import parse
from repro.storage.database import Database

Env = dict[tuple[str, str], Any]


def _eval(expr: ast.Expression, env: Env, db: Database, binding_tables: dict) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            return env[(expr.table, expr.name)]
        matches = [v for (b, c), v in env.items() if c == expr.name]
        homes = {
            b
            for (b, c) in env
            if c == expr.name
        }
        assert len(homes) == 1, f"ambiguous {expr.name}"
        return matches[0]
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            left = _eval(expr.left, env, db, binding_tables)
            if left is False:
                return False
            right = _eval(expr.right, env, db, binding_tables)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if expr.op == "OR":
            left = _eval(expr.left, env, db, binding_tables)
            if left is True:
                return True
            right = _eval(expr.right, env, db, binding_tables)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = _eval(expr.left, env, db, binding_tables)
        right = _eval(expr.right, env, db, binding_tables)
        if left is None or right is None:
            return None
        if expr.op == "=":
            return left == right
        if expr.op == "<>":
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)
            return left / right
        if expr.op == "%":
            return left % right
        if expr.op == "||":
            return str(left) + str(right)
        raise AssertionError(expr.op)
    if isinstance(expr, ast.UnaryOp):
        value = _eval(expr.operand, env, db, binding_tables)
        if value is None:
            return None
        return (not value) if expr.op == "NOT" else -value
    if isinstance(expr, ast.InList):
        value = _eval(expr.operand, env, db, binding_tables)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = _eval(item, env, db, binding_tables)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated
    if isinstance(expr, ast.Between):
        value = _eval(expr.operand, env, db, binding_tables)
        low = _eval(expr.low, env, db, binding_tables)
        high = _eval(expr.high, env, db, binding_tables)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expr.negated else result
    if isinstance(expr, ast.Like):
        value = _eval(expr.operand, env, db, binding_tables)
        pattern = _eval(expr.pattern, env, db, binding_tables)
        if value is None or pattern is None:
            return None
        regex = "^" + "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in str(pattern)
        ) + "$"
        result = re.match(regex, str(value), re.DOTALL) is not None
        return (not result) if expr.negated else result
    if isinstance(expr, ast.IsNull):
        value = _eval(expr.operand, env, db, binding_tables)
        return (value is not None) if expr.negated else (value is None)
    raise AssertionError(f"unsupported {expr!r}")


def _flatten_from(items) -> tuple[dict[str, str], list[ast.Expression]]:
    bindings: dict[str, str] = {}
    conditions: list[ast.Expression] = []

    def visit(item):
        if isinstance(item, ast.TableRef):
            bindings[item.binding] = item.name
        else:
            visit(item.left)
            visit(item.right)
            if item.condition is not None:
                conditions.append(item.condition)

    for item in items:
        visit(item)
    return bindings, conditions


def _environments(db: Database, bindings: dict[str, str]):
    names = list(bindings)

    def recurse(index: int, env: Env):
        if index == len(names):
            yield dict(env)
            return
        binding = names[index]
        table = db.table(bindings[binding])
        columns = table.schema.column_names
        for row in table.rows:
            for column, value in zip(columns, row):
                env[(binding, column)] = value
            yield from recurse(index + 1, env)
        for column in columns:
            env.pop((binding, column), None)

    yield from recurse(0, {})


def _aggregate(call: ast.FunctionCall, envs: list[Env], db, bindings) -> Any:
    if call.name == "COUNT" and isinstance(call.args[0], ast.Star):
        if call.distinct:
            return len({tuple(sorted(e.items())) for e in envs})
        return len(envs)
    values = [
        v
        for env in envs
        if (v := _eval(call.args[0], env, db, bindings)) is not None
    ]
    if call.distinct:
        values = list(set(values))
    if call.name == "COUNT":
        return len(values)
    if not values:
        return None
    if call.name == "SUM":
        return sum(values)
    if call.name == "AVG":
        return sum(values) / len(values)
    if call.name == "MIN":
        return min(values)
    if call.name == "MAX":
        return max(values)
    raise AssertionError(call.name)


def _project_env(env: Env, expr: ast.Expression, db, bindings, group=None) -> Any:
    if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
        return _aggregate(expr, group, db, bindings)
    if group is not None and isinstance(expr, ast.BinaryOp):
        left = _project_env(env, expr.left, db, bindings, group)
        right = _project_env(env, expr.right, db, bindings, group)
        synthetic = ast.BinaryOp(expr.op, ast.Literal(left), ast.Literal(right))
        return _eval(synthetic, {}, db, bindings)
    return _eval(expr, env, db, bindings)


def reference_execute(db: Database, sql: str) -> list[tuple]:
    """Evaluate one SELECT block by brute force; returns unordered rows
    (ordered when the query has ORDER BY)."""
    stmt = parse(sql)
    assert isinstance(stmt, ast.SelectStatement)
    bindings, on_conditions = _flatten_from(stmt.from_items)

    envs = []
    for env in _environments(db, bindings):
        keep = True
        for condition in on_conditions + ([stmt.where] if stmt.where else []):
            if _eval(condition, env, db, bindings) is not True:
                keep = False
                break
        if keep:
            envs.append(env)

    has_aggregates = any(
        isinstance(node, ast.FunctionCall) and node.is_aggregate
        for item in stmt.items
        for node in ast.walk_expression(item.expression)
    )

    rows: list[tuple] = []
    if has_aggregates or stmt.group_by:
        groups: dict[tuple, list[Env]] = {}
        for env in envs:
            key = tuple(_eval(g, env, db, bindings) for g in stmt.group_by)
            groups.setdefault(key, []).append(env)
        if not stmt.group_by and not groups:
            groups[()] = []
        for key, members in groups.items():
            representative = members[0] if members else {}
            if stmt.having is not None:
                having_value = _project_env(
                    representative, stmt.having, db, bindings, members
                )
                if having_value is not True:
                    continue
            rows.append(
                tuple(
                    _project_env(representative, item.expression, db, bindings, members)
                    for item in stmt.items
                )
            )
    else:
        for env in envs:
            out = []
            for item in stmt.items:
                if isinstance(item.expression, ast.Star):
                    for binding in bindings:
                        table = db.table(bindings[binding])
                        out.extend(
                            env[(binding, c)] for c in table.schema.column_names
                        )
                else:
                    out.append(_eval(item.expression, env, db, bindings))
            rows.append(tuple(out))

    if stmt.distinct:
        seen, deduped = set(), []
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        rows = deduped

    if stmt.order_by:
        for order in reversed(stmt.order_by):
            # ORDER BY on plain columns only (enough for the oracle tests)
            rows.sort(
                key=lambda r: tuple(
                    (v is not None, v) for v in [_order_key(stmt, order, r)]
                ),
                reverse=not order.ascending,
            )
    if stmt.offset:
        rows = rows[stmt.offset:]
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return rows


def _order_key(stmt: ast.SelectStatement, order: ast.OrderItem, row: tuple):
    # oracle supports ORDER BY <output column name> only
    assert isinstance(order.expression, ast.ColumnRef)
    names = []
    for item in stmt.items:
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expression, ast.ColumnRef):
            names.append(item.expression.name)
        else:
            names.append(None)
    return row[names.index(order.expression.name)]
