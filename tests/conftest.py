"""Shared fixtures: the paper's Example 1/2 setting and a small TLC instance."""

from __future__ import annotations

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    BEAS,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)
from repro.workloads.tlc import generate_tlc, tlc_access_schema


def example1_schema() -> DatabaseSchema:
    """The paper's Example 1 relations, with call_id/pkg_id keys added so
    key-dependent behaviour (bag-exact plans) is testable."""
    return DatabaseSchema(
        [
            TableSchema(
                "call",
                [
                    ("call_id", DataType.INT),
                    ("pnum", DataType.STRING),
                    ("recnum", DataType.STRING),
                    ("date", DataType.DATE),
                    ("region", DataType.STRING),
                ],
                keys=[("call_id",)],
            ),
            TableSchema(
                "package",
                [
                    ("pkg_id", DataType.INT),
                    ("pnum", DataType.STRING),
                    ("pid", DataType.STRING),
                    ("start", DataType.DATE),
                    ("end", DataType.DATE),
                    ("year", DataType.INT),
                ],
                keys=[("pkg_id",)],
            ),
            TableSchema(
                "business",
                [
                    ("pnum", DataType.STRING),
                    ("type", DataType.STRING),
                    ("region", DataType.STRING),
                ],
                keys=[("pnum",)],
            ),
        ],
        name="example1",
    )


def example1_database() -> Database:
    db = Database(example1_schema())
    businesses = [
        ("100", "bank", "east"),
        ("101", "bank", "east"),
        ("102", "shop", "east"),
        ("103", "bank", "west"),
    ]
    packages = [
        (1, "100", "c0", "2016-01-01", "2016-12-31", 2016),
        (2, "101", "c1", "2016-01-01", "2016-12-31", 2016),
        (3, "101", "c0", "2016-05-01", "2016-12-31", 2016),
        (4, "102", "c0", "2016-01-01", "2016-12-31", 2016),
        (5, "103", "c0", "2016-01-01", "2016-03-31", 2016),
        (6, "100", "c0", "2015-01-01", "2015-12-31", 2015),
    ]
    calls = [
        (1, "100", "555", "2016-06-01", "north"),
        (2, "100", "556", "2016-06-01", "south"),
        (3, "101", "557", "2016-06-01", "east"),
        (4, "100", "555", "2016-06-02", "west"),
        (5, "102", "558", "2016-06-01", "east"),
        (6, "103", "559", "2016-06-01", "plains"),
        (7, "100", "555", "2016-06-01", "north"),  # duplicate (recnum, region)
    ]
    for row in businesses:
        db.insert("business", row)
    for row in packages:
        db.insert("package", row)
    for row in calls:
        db.insert("call", row)
    return db


def example1_access_schema() -> AccessSchema:
    return AccessSchema(
        [
            AccessConstraint(
                "call", ["pnum", "date"], ["recnum", "region"], 500, name="psi1"
            ),
            AccessConstraint(
                "package", ["pnum", "year"], ["pid", "start", "end"], 12,
                name="psi2",
            ),
            AccessConstraint(
                "business", ["type", "region"], ["pnum"], 2000, name="psi3"
            ),
        ],
        name="A0",
    )


EXAMPLE2_SQL = """
select call.region
from call, package, business
where business.type = 'bank' and business.region = 'east'
  and business.pnum = call.pnum and call.date = '2016-06-01'
  and call.pnum = package.pnum and package.year = 2016
  and package.start <= '2016-06-01' and package.end >= '2016-06-01'
  and package.pid = 'c0'
"""


@pytest.fixture
def ex1_schema() -> DatabaseSchema:
    return example1_schema()


@pytest.fixture
def ex1_db() -> Database:
    return example1_database()


@pytest.fixture
def ex1_access() -> AccessSchema:
    return example1_access_schema()


@pytest.fixture
def ex1_beas(ex1_db, ex1_access) -> BEAS:
    return BEAS(ex1_db, ex1_access)


@pytest.fixture(scope="session")
def tlc_small():
    """One shared TLC instance (scale 1) for integration tests."""
    return generate_tlc(scale=1, seed=42)


@pytest.fixture(scope="session")
def tlc_beas(tlc_small):
    return BEAS(tlc_small.database, tlc_access_schema())
