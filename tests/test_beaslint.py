"""beaslint: the house checkers must catch the historical bug classes.

Each checker encodes an invariant a prior PR fixed a real bug against;
the known-bad fixtures below re-introduce exactly those bugs and must
be flagged with the right rule id at the right line. Known-good
fixtures are the repaired spellings and must stay silent.
"""

import json
import textwrap

import pytest

from repro.analysis import all_checkers, lint_source, run_lint
from repro.analysis.core import SUPPRESSION_RULE


def _lint(source, relpath, rules=None):
    return lint_source(textwrap.dedent(source), relpath, rules=rules)


def _hits(report, rule):
    return [f for f in report.findings if f.rule == rule]


def test_registry_has_all_house_rules():
    assert set(all_checkers()) == {
        "null-guard",
        "lock-discipline",
        "env-access",
        "metrics-accounting",
        "cache-guard",
        "except-discipline",
        "storage-codec",
    }


# --------------------------------------------------------------------------- #
# null-guard — PR 6's unguarded interval comparator
# --------------------------------------------------------------------------- #
class TestNullGuard:
    def test_flags_unguarded_row_comparison(self):
        # PR 6's bug: the interval comparator compared row values
        # directly, so a NULL either crashed or ordered like a value.
        report = _lint(
            """\
            def _compile_interval_check(index, low):
                return lambda row: row[index] >= low
            """,
            "bounded/subsume.py",
        )
        hits = _hits(report, "null-guard")
        assert len(hits) == 1
        assert hits[0].line == 2

    def test_guarded_comparison_passes(self):
        # the PR 6 fix: a walrus guard dominating the comparison
        report = _lint(
            """\
            def _compile_interval_check(index, low):
                return lambda row: (v := row[index]) is not None and v >= low
            """,
            "bounded/subsume.py",
        )
        assert not _hits(report, "null-guard")

    def test_flags_name_assigned_from_subscript(self):
        report = _lint(
            """\
            def admits(row, index, low):
                value = row[index]
                return value >= low
            """,
            "engine/columnar.py",
        )
        hits = _hits(report, "null-guard")
        assert len(hits) == 1
        assert hits[0].line == 3

    def test_guard_in_enclosing_scope_counts(self):
        report = _lint(
            """\
            def admits(row, index, low):
                value = row[index]
                if value is None:
                    return False
                return value >= low
            """,
            "engine/columnar.py",
        )
        assert not _hits(report, "null-guard")

    def test_flags_equality_with_none_literal(self):
        report = _lint(
            """\
            def is_null(row, index):
                return row[index] == None
            """,
            "engine/expressions.py",
        )
        assert _hits(report, "null-guard")

    def test_out_of_scope_module_is_exempt(self):
        report = _lint(
            """\
            def admits(row, index, low):
                return row[index] >= low
            """,
            "serving/server.py",
        )
        assert not _hits(report, "null-guard")

    def test_plain_parameter_comparison_is_not_flagged(self):
        report = _lint(
            """\
            def clamp(n, max_per_shape):
                if max_per_shape < 1:
                    return 1
                return min(n, max_per_shape)
            """,
            "bounded/subsume.py",
        )
        assert not _hits(report, "null-guard")


# --------------------------------------------------------------------------- #
# lock-discipline — PR 2's canonical-order invariant
# --------------------------------------------------------------------------- #
class TestLockDiscipline:
    def test_flags_raw_acquire_outside_shard_module(self):
        report = _lint(
            """\
            def grab(self, name):
                shard = self.shard(name)
                shard.lock.acquire_read()
            """,
            "serving/server.py",
        )
        hits = _hits(report, "lock-discipline")
        assert len(hits) == 1
        assert hits[0].line == 3

    def test_schema_lock_is_exempt(self):
        report = _lint(
            """\
            def grab(self):
                self._schema_lock.acquire_read()
            """,
            "serving/server.py",
        )
        assert not _hits(report, "lock-discipline")

    def test_shard_module_itself_is_exempt(self):
        report = _lint(
            """\
            def acquire_read_ordered(shards):
                for shard in shards:
                    shard.lock.acquire_read()
            """,
            "serving/shard.py",
        )
        assert not _hits(report, "lock-discipline")

    def test_flags_dispatch_under_leaf_mutex(self):
        report = _lint(
            """\
            def serve_locked(self, plan):
                with self._mutex:
                    return self._engine.execute(plan)
            """,
            "serving/server.py",
        )
        hits = _hits(report, "lock-discipline")
        assert len(hits) == 1
        assert hits[0].line == 3

    def test_dispatch_after_release_passes(self):
        report = _lint(
            """\
            def serve_unlocked(self, plan):
                with self._mutex:
                    snapshot = self._state.copy()
                return self._engine.execute(plan)
            """,
            "serving/server.py",
        )
        assert not _hits(report, "lock-discipline")


# --------------------------------------------------------------------------- #
# env-access — PR 5's centralised BEAS_* validation
# --------------------------------------------------------------------------- #
class TestEnvAccess:
    def test_flags_environ_read_outside_config(self):
        report = _lint(
            """\
            import os

            def resolve_mode():
                return os.environ.get("BEAS_EXECUTOR", "row")
            """,
            "engine/executor.py",
        )
        hits = _hits(report, "env-access")
        assert len(hits) == 1
        assert hits[0].line == 4

    def test_flags_getenv_and_from_import(self):
        report = _lint(
            """\
            import os
            from os import environ

            mode = os.getenv("BEAS_ROUTING")
            """,
            "engine/router.py",
        )
        assert len(_hits(report, "env-access")) == 2

    def test_config_module_is_exempt(self):
        report = _lint(
            """\
            import os

            def _env_int(name):
                return os.environ.get(name)
            """,
            "config.py",
        )
        assert not _hits(report, "env-access")


# --------------------------------------------------------------------------- #
# metrics-accounting — PR 7's seconds=0.0 serve latencies
# --------------------------------------------------------------------------- #
class TestMetricsAccounting:
    def test_flags_hardcoded_zero_seconds(self):
        # PR 7's bug: cache-hit serves reported seconds=0.0, poisoning
        # the learned router's cost model and cost-aware admission.
        report = _lint(
            """\
            def serve_cached(entry):
                return ExecutionMetrics(rows_output=len(entry.rows), seconds=0.0)
            """,
            "serving/server.py",
        )
        hits = _hits(report, "metrics-accounting")
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "seconds=0" in hits[0].message

    def test_flags_undeclared_field(self):
        report = _lint(
            """\
            def serve(entry):
                return ExecutionMetrics(total_rows=5)
            """,
            "serving/server.py",
        )
        hits = _hits(report, "metrics-accounting")
        assert len(hits) == 1
        assert "total_rows" in hits[0].message

    def test_flags_zero_literal_attribute_write(self):
        report = _lint(
            """\
            def reset(metrics):
                metrics.seconds = 0.0
            """,
            "engine/executor.py",
        )
        assert _hits(report, "metrics-accounting")

    def test_measured_seconds_pass(self):
        report = _lint(
            """\
            import time

            def serve_cached(entry, start):
                return ExecutionMetrics(
                    rows_output=len(entry.rows),
                    seconds=time.perf_counter() - start,
                )
            """,
            "serving/server.py",
        )
        assert not _hits(report, "metrics-accounting")

    def test_bare_construction_passes(self):
        report = _lint(
            """\
            def fresh():
                return ExecutionMetrics()
            """,
            "engine/executor.py",
        )
        assert not _hits(report, "metrics-accounting")


# --------------------------------------------------------------------------- #
# cache-guard — PR 6's version-vector freshness invariant
# --------------------------------------------------------------------------- #
class TestCacheGuard:
    def test_flags_guard_free_cache_serve(self):
        # PR 6's invariant: rows may only leave a cache after the entry
        # is revalidated against versions / the schema generation.
        report = _lint(
            """\
            def serve(self, key):
                entry = self._results.lookup(key)
                if entry is not None:
                    return entry.rows
                return None
            """,
            "serving/server.py",
        )
        hits = _hits(report, "cache-guard")
        assert len(hits) == 1
        assert hits[0].line == 2

    def test_freshness_checked_serve_passes(self):
        report = _lint(
            """\
            def serve(self, key):
                entry = self._results.lookup(key)
                if entry is not None and self._entry_fresh(entry):
                    return entry.rows
                return None
            """,
            "serving/server.py",
        )
        assert not _hits(report, "cache-guard")

    def test_version_vector_reference_counts(self):
        report = _lint(
            """\
            def serve(self, key, versions):
                entry = self._results.peek(key)
                if entry is not None and entry.versions == versions:
                    return entry.rows
                return None
            """,
            "serving/async_server.py",
        )
        assert not _hits(report, "cache-guard")

    def test_shard_and_cache_modules_are_exempt(self):
        source = """\
            def lookup(self, key):
                return self._entries.lookup(key)
            """
        for relpath in ("serving/shard.py", "serving/cache.py"):
            assert not _hits(_lint(source, relpath), "cache-guard")

    def test_non_serving_module_is_exempt(self):
        report = _lint(
            """\
            def probe(self, key):
                return self._candidates.lookup(key)
            """,
            "bounded/subsume.py",
        )
        assert not _hits(report, "cache-guard")


# --------------------------------------------------------------------------- #
# except-discipline — unjustified broad catches
# --------------------------------------------------------------------------- #
class TestExceptDiscipline:
    def test_flags_unjustified_broad_except(self):
        report = _lint(
            """\
            def probe(expr):
                try:
                    return compile(expr)
                except Exception:
                    return None
            """,
            "bounded/subsume.py",
        )
        hits = _hits(report, "except-discipline")
        assert len(hits) == 1
        assert hits[0].line == 4

    def test_flags_bare_except(self):
        report = _lint(
            """\
            def probe(expr):
                try:
                    return compile(expr)
                except:
                    return None
            """,
            "engine/pool.py",
        )
        assert _hits(report, "except-discipline")

    def test_narrow_except_passes(self):
        report = _lint(
            """\
            def probe(expr):
                try:
                    return compile(expr)
                except ValueError:
                    return None
            """,
            "bounded/subsume.py",
        )
        assert not _hits(report, "except-discipline")

    def test_noqa_with_reason_passes(self):
        report = _lint(
            """\
            def worker(task):
                try:
                    return run(task)
                except Exception as error:  # noqa: BLE001 - worker boundary, parent re-runs
                    return ("unsupported", repr(error))
            """,
            "engine/pool.py",
        )
        assert not _hits(report, "except-discipline")

    def test_noqa_without_reason_is_flagged(self):
        report = _lint(
            """\
            def worker(task):
                try:
                    return run(task)
                except Exception:  # noqa: BLE001
                    return None
            """,
            "engine/pool.py",
        )
        assert _hits(report, "except-discipline")


# --------------------------------------------------------------------------- #
# storage-codec — PR 9's divergent ad-hoc value coding on storage boundaries
# --------------------------------------------------------------------------- #
class TestStorageCodec:
    def test_flags_adhoc_float_parse_in_storage_module(self):
        report = _lint(
            """\
            def read_cell(text):
                return float(text)
            """,
            "storage/csvio.py",
        )
        hits = _hits(report, "storage-codec")
        assert len(hits) == 1
        assert hits[0].line == 2

    def test_flags_adhoc_repr_print_in_storage_module(self):
        report = _lint(
            """\
            def write_cell(value):
                return repr(value)
            """,
            "storage/wal.py",
        )
        assert len(_hits(report, "storage-codec")) == 1

    def test_codec_module_is_exempt(self):
        report = _lint(
            """\
            def encode_value(value):
                return repr(value) if isinstance(value, float) else str(value)
            """,
            "storage/codec.py",
        )
        assert not _hits(report, "storage-codec")

    def test_non_storage_modules_are_exempt(self):
        report = _lint(
            """\
            def describe(value):
                return repr(float(value))
            """,
            "serving/server.py",
        )
        assert not _hits(report, "storage-codec")

    def test_codec_call_is_silent(self):
        report = _lint(
            """\
            from repro.storage.codec import encode_value

            def write_cell(value):
                return encode_value(value)
            """,
            "storage/mmapstore.py",
        )
        assert not _hits(report, "storage-codec")

    # -- PR 10: wire framing in distributed/ modules ------------------- #
    def test_flags_adhoc_struct_framing_in_distributed_module(self):
        # the fleet wire must reuse the WAL's u32len|u32crc framing, not
        # mint a second header layout with struct.pack
        report = _lint(
            """\
            import struct

            def send_frame(sock, payload):
                header = struct.pack("<II", len(payload), 0)
                sock.sendall(header + payload)
            """,
            "distributed/protocol.py",
        )
        hits = _hits(report, "storage-codec")
        assert len(hits) == 1
        assert "frame_record" in hits[0].message

    def test_wal_framing_helpers_in_distributed_module_are_silent(self):
        report = _lint(
            """\
            from repro.storage.wal import frame_record, split_frame_header

            def send_frame(sock, payload):
                sock.sendall(frame_record(payload))

            def read_header(header):
                return split_frame_header(header)
            """,
            "distributed/protocol.py",
        )
        assert not _hits(report, "storage-codec")

    def test_flags_adhoc_value_coding_in_distributed_module(self):
        report = _lint(
            """\
            def encode_cell(value):
                return repr(value)
            """,
            "distributed/replica.py",
        )
        assert len(_hits(report, "storage-codec")) == 1

    def test_struct_in_storage_module_stays_silent(self):
        # storage/wal.py owns the canonical frame header: the struct ban
        # is scoped to the distributed wire modules only
        report = _lint(
            """\
            import struct

            _FRAME_HEADER = struct.Struct("<II")

            def frame(payload):
                return struct.pack("<II", len(payload), 0) + payload
            """,
            "storage/wal.py",
        )
        assert not _hits(report, "storage-codec")


# --------------------------------------------------------------------------- #
# suppression machinery
# --------------------------------------------------------------------------- #
class TestSuppressions:
    def test_trailing_marker_suppresses_own_line(self):
        report = _lint(
            """\
            def grab(self, shard):
                shard.lock.acquire_write()  # beaslint: ok(lock-discipline) - single shard, canonical by construction
            """,
            "serving/server.py",
        )
        assert not report.findings
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "lock-discipline"

    def test_comment_line_marker_covers_next_line(self):
        report = _lint(
            """\
            def grab(self, shard):
                # beaslint: ok(lock-discipline) - single shard, canonical by construction
                shard.lock.acquire_write()
            """,
            "serving/server.py",
        )
        assert not report.findings
        assert len(report.suppressed) == 1

    def test_marker_without_reason_is_itself_a_finding(self):
        report = _lint(
            """\
            def grab(self, shard):
                shard.lock.acquire_write()  # beaslint: ok(lock-discipline)
            """,
            "serving/server.py",
        )
        rules = {f.rule for f in report.findings}
        # the reasonless marker doesn't suppress, and is reported itself
        assert SUPPRESSION_RULE in rules
        assert "lock-discipline" in rules

    def test_marker_naming_unknown_rule_is_a_finding(self):
        report = _lint(
            """\
            x = 1  # beaslint: ok(no-such-rule) - because
            """,
            "engine/pool.py",
        )
        assert [f.rule for f in report.findings] == [SUPPRESSION_RULE]
        assert "no-such-rule" in report.findings[0].message

    def test_marker_for_a_different_rule_does_not_suppress(self):
        report = _lint(
            """\
            def grab(self, shard):
                shard.lock.acquire_write()  # beaslint: ok(env-access) - wrong rule
            """,
            "serving/server.py",
        )
        assert _hits(report, "lock-discipline")

    def test_marker_inside_string_literal_is_inert(self):
        report = _lint(
            '''\
            DOC = """
            suppress with  # beaslint: ok(rule-name) - reason
            """
            ''',
            "engine/pool.py",
        )
        assert not report.findings
        assert not report.suppressed


# --------------------------------------------------------------------------- #
# rule selection + whole-codebase gate
# --------------------------------------------------------------------------- #
class TestRunner:
    def test_rule_selection_runs_only_requested_rules(self):
        source = """\
            import os

            def bad(self, shard):
                shard.lock.acquire_write()
                return os.getenv("BEAS_EXECUTOR")
            """
        report = _lint(source, "serving/server.py", rules=["env-access"])
        assert {f.rule for f in report.findings} == {"env-access"}

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(KeyError):
            _lint("x = 1", "engine/pool.py", rules=["no-such-rule"])

    def test_whole_codebase_is_clean(self):
        # the gate the CI lint job enforces: zero unsuppressed findings
        # across every module of the repro package
        report = run_lint()
        assert report.files_checked > 50
        assert report.clean, "\n" + "\n".join(f.render() for f in report.findings)

    def test_every_in_tree_suppression_is_justified_and_known(self):
        report = run_lint()
        known = set(all_checkers())
        for finding in report.suppressed:
            assert finding.rule in known


# --------------------------------------------------------------------------- #
# CLI entry point
# --------------------------------------------------------------------------- #
class TestCli:
    def test_lint_json_exit_zero_on_clean_tree(self, capsys):
        from repro.cli import main

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert set(payload["rules"]) == set(all_checkers())

    def test_lint_exit_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\nmode = os.getenv('BEAS_EXECUTOR')\n")
        from repro.cli import main

        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[env-access]" in out

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_checkers():
            assert rule in out
