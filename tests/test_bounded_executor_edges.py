"""Edge-path tests for the bounded executor: shared-class constant keys,
empty-X constraints, NULL keys, and chain-fetch consistency filtering."""

import pytest

from repro import (
    AccessConstraint,
    AccessSchema,
    ASCatalog,
    BoundedEvaluabilityChecker,
    BoundedPlanExecutor,
    ConventionalEngine,
    Database,
    DatabaseSchema,
    DataType,
    TableSchema,
)


def make_db(rows, columns=("a", "b", "c"), keys=()) -> Database:
    schema = DatabaseSchema(
        [
            TableSchema(
                "r",
                [(name, DataType.STRING) for name in columns],
                keys=keys,
            )
        ]
    )
    db = Database(schema)
    for row in rows:
        db.insert("r", row)
    return db


def run(db, access, sql, **kwargs):
    checker = BoundedEvaluabilityChecker(db.schema, access)
    decision = checker.check(sql)
    assert decision.covered, decision.reasons
    executor = BoundedPlanExecutor(ASCatalog(db, access), **kwargs)
    return executor.execute(decision.plan), decision


class TestSharedClassConstants:
    def test_two_x_attrs_in_one_equality_class(self):
        """``a = b AND a IN (...)``: both key parts must take the SAME
        enumerated constant, not the cartesian product."""
        db = make_db(
            [
                ("x", "x", "hit"),     # a = b = 'x': matches
                ("x", "y", "cross"),   # a != b: must NOT match via (x, y)
                ("y", "y", "hit2"),
                ("z", "z", "miss"),    # not in the IN list
            ]
        )
        access = AccessSchema(
            [AccessConstraint("r", ["a", "b"], ["c"], 10, name="ab")]
        )
        sql = "SELECT DISTINCT c FROM r WHERE a = b AND a IN ('x', 'y')"
        result, decision = run(db, access, sql)
        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows) == {("hit",), ("hit2",)}
        # key bound: 2 shared constants, not 2x2
        assert decision.plan.fetch_ops[0].key_bound == 2

    def test_distinct_class_constants_do_multiply(self):
        db = make_db(
            [
                ("x", "u", "1"),
                ("x", "v", "2"),
                ("y", "u", "3"),
            ]
        )
        access = AccessSchema(
            [AccessConstraint("r", ["a", "b"], ["c"], 10, name="ab")]
        )
        sql = (
            "SELECT DISTINCT c FROM r "
            "WHERE a IN ('x', 'y') AND b IN ('u', 'v')"
        )
        result, decision = run(db, access, sql)
        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows)
        assert decision.plan.fetch_ops[0].key_bound == 4


class TestEmptyXConstraint:
    def test_bounded_relation_constraint(self):
        """``R(() -> Y, N)`` encodes 'the whole relation is small'."""
        db = make_db([("1", "x", "c1"), ("2", "y", "c2")])
        access = AccessSchema(
            [AccessConstraint("r", [], ["a", "b", "c"], 10, name="whole")]
        )
        sql = "SELECT DISTINCT b FROM r WHERE c = 'c1'"
        result, decision = run(db, access, sql)
        assert set(result.rows) == {("x",)}
        assert decision.access_bound == 10

    def test_empty_x_with_join(self):
        schema = DatabaseSchema(
            [
                TableSchema("dim", [("k", DataType.STRING), ("v", DataType.STRING)]),
                TableSchema("facts", [("k", DataType.STRING), ("w", DataType.STRING)]),
            ]
        )
        db = Database(schema)
        db.insert("dim", ("k1", "v1"))
        db.insert("dim", ("k2", "v2"))
        db.insert("facts", ("k1", "w1"))
        db.insert("facts", ("k1", "w2"))
        access = AccessSchema(
            [
                AccessConstraint("dim", [], ["k", "v"], 5, name="dim_all"),
                AccessConstraint("facts", ["k"], ["w"], 5, name="facts_by_k"),
            ]
        )
        sql = (
            "SELECT DISTINCT f.w FROM dim d, facts f "
            "WHERE d.k = f.k AND d.v = 'v1'"
        )
        result, _ = run(db, access, sql)
        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows) == {("w1",), ("w2",)}


class TestNullHandling:
    def test_null_join_keys_skipped(self):
        """A NULL in a fetch-key column never joins (SQL semantics)."""
        schema = DatabaseSchema(
            [
                TableSchema("s", [("k", DataType.STRING), ("tag", DataType.STRING)]),
                TableSchema("t", [("k", DataType.STRING), ("v", DataType.STRING)]),
            ]
        )
        db = Database(schema)
        db.insert("s", (None, "null-key"))
        db.insert("s", ("k1", "good"))
        db.insert("t", ("k1", "v1"))
        access = AccessSchema(
            [
                AccessConstraint("s", ["tag"], ["k"], 5, name="s_by_tag"),
                AccessConstraint("t", ["k"], ["v"], 5, name="t_by_k"),
            ]
        )
        sql = (
            "SELECT DISTINCT t.v FROM s, t "
            "WHERE s.tag IN ('null-key', 'good') AND s.k = t.k"
        )
        result, _ = run(db, access, sql)
        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows) == {("v1",)}

    def test_null_y_values_preserved(self):
        db = make_db([("x", "lbl", None), ("x", "lbl", "c")], keys=())
        access = AccessSchema(
            [AccessConstraint("r", ["a"], ["c"], 5, name="by_a")]
        )
        sql = "SELECT DISTINCT c FROM r WHERE a = 'x' AND c IS NOT NULL"
        result, _ = run(db, access, sql)
        assert set(result.rows) == {("c",)}

    def test_index_fetch_null_key_never_matches(self):
        """The fetch primitive implements ``X = key``: under three-valued
        logic a NULL key part matches nothing — even when base rows with
        a genuinely-NULL X-value exist and hold a bucket."""
        from repro import AccessIndex

        db = make_db([(None, "b0", "c0"), ("k1", "b1", "c1")])
        index = AccessIndex(
            AccessConstraint("r", ["a"], ["c"], 5, name="by_a"),
            db.table("r"),
        )
        # the NULL-keyed bucket exists for storage/maintenance accounting…
        assert index.key_count == 2
        # …but an equality lookup never reaches it
        assert index.fetch((None,)) == []
        assert index.fetch_many([(None,), ("k1",)]) == [("c1",)]
        assert index.fetch(("k1",)) == [("c1",)]

    @pytest.mark.parametrize("executor", ["row", "columnar"])
    @pytest.mark.parametrize("dedup_keys", [False, True])
    def test_dedup_null_join_keys_differential(self, executor, dedup_keys):
        """NULL-bearing join keys with key dedup on/off: answers must
        match the scan-based engine, and the index must never be probed
        with a NULL-bearing key (so dedup has no NULL keys to conflate)."""
        schema = DatabaseSchema(
            [
                TableSchema("s", [("k", DataType.STRING), ("tag", DataType.STRING)]),
                TableSchema("t", [("k", DataType.STRING), ("v", DataType.STRING)]),
            ]
        )
        db = Database(schema)
        for row in [
            (None, "g1"), ("k1", "g1"), ("k1", "g2"), (None, "g2"), ("k2", "g1"),
        ]:
            db.insert("s", row)
        for row in [("k1", "v1"), ("k1", "v2"), ("k2", "v3"), (None, "vnull")]:
            db.insert("t", row)
        access = AccessSchema(
            [
                AccessConstraint("s", ["tag"], ["k"], 5, name="s_by_tag"),
                AccessConstraint("t", ["k"], ["v"], 5, name="t_by_k"),
            ]
        )
        sql = (
            "SELECT DISTINCT t.v FROM s, t "
            "WHERE s.tag IN ('g1', 'g2') AND s.k = t.k"
        )
        catalog = ASCatalog(db, access)
        probed: list[tuple] = []
        for index in (catalog.index_for(c) for c in access):
            original = index.fetch
            index.fetch = lambda key, _orig=original: (
                probed.append(tuple(key)) or _orig(key)
            )
        checker = BoundedEvaluabilityChecker(db.schema, access)
        decision = checker.check(sql)
        assert decision.covered, decision.reasons
        result = BoundedPlanExecutor(
            catalog, dedup_keys=dedup_keys, executor=executor
        ).execute(decision.plan)
        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows) == {("v1",), ("v2",), ("v3",)}
        assert all(None not in key for key in probed), probed

    @pytest.mark.parametrize("executor", ["row", "columnar"])
    def test_dedup_distinct_null_bearing_keys_not_conflated(self, executor):
        """Two-part fetch keys that differ only in their non-NULL part:
        key dedup must not fold them together, and neither may match
        (a NULL part makes the whole key unmatchable under 3VL)."""
        schema = DatabaseSchema(
            [
                TableSchema(
                    "s",
                    [
                        ("tag", DataType.STRING),
                        ("k1", DataType.STRING),
                        ("k2", DataType.STRING),
                        ("e", DataType.STRING),
                    ],
                ),
                TableSchema(
                    "t",
                    [
                        ("k1", DataType.STRING),
                        ("k2", DataType.STRING),
                        ("v", DataType.STRING),
                    ],
                ),
            ]
        )
        db = Database(schema)
        for row in [
            ("g", None, "a", "e1"),  # distinct NULL-bearing keys: (None, 'a')…
            ("g", None, "b", "e2"),  # …and (None, 'b') must stay distinct
            ("g", "x", "a", "e3"),   # matches
            ("g", "x", "a", "e4"),   # same key, distinct row: dedup folds it
            ("g", "x", None, "e5"),
        ]:
            db.insert("s", row)
        db.insert("t", ("x", "a", "v1"))
        db.insert("t", (None, "a", "vnull"))  # NULL-keyed base row
        access = AccessSchema(
            [
                AccessConstraint(
                    "s", ["tag"], ["k1", "k2", "e"], 8, name="s_by_tag"
                ),
                AccessConstraint("t", ["k1", "k2"], ["v"], 8, name="t_by_k"),
            ]
        )
        sql = (
            "SELECT DISTINCT t.v FROM s, t WHERE s.tag = 'g' "
            "AND s.k1 = t.k1 AND s.k2 = t.k2"
        )
        host = ConventionalEngine(db).execute(sql)
        assert set(host.rows) == {("v1",)}
        results = {}
        for dedup_keys in (False, True):
            result, _ = run(
                db, access, sql, dedup_keys=dedup_keys, executor=executor
            )
            assert set(result.rows) == {("v1",)}
            results[dedup_keys] = result.metrics.tuples_fetched
        # dedup saves exactly the repeated ('x', 'a') probe; the two
        # NULL-bearing keys contribute no fetches in either mode
        assert results[True] < results[False]


class TestChainConsistency:
    def test_overlapping_y_columns_filter_consistently(self):
        """A chain fetch whose Y overlaps already-materialised columns must
        keep only matching combinations (no cross-products)."""
        db = make_db(
            [
                ("k1", "b1", "c1"),
                ("k2", "b2", "c2"),
            ],
            keys=[("a",)],
        )
        access = AccessSchema(
            [
                # anchor: exposes the key plus b
                AccessConstraint("r", ["b"], ["a"], 5, name="anchor"),
                # chain keyed by the key; y overlaps b (already materialised)
                AccessConstraint("r", ["a"], ["b", "c"], 5, name="chain"),
            ]
        )
        sql = "SELECT DISTINCT c FROM r WHERE b IN ('b1', 'b2')"
        result, decision = run(db, access, sql)
        host = ConventionalEngine(db).execute(sql)
        assert set(result.rows) == set(host.rows) == {("c1",), ("c2",)}
        names = [op.constraint.name for op in decision.plan.fetch_ops]
        assert names == ["anchor", "chain"]
