"""Physical-operator edge cases: join block boundaries, duplicate key runs,
overhead busy-work, Intermediate layout caching, materialized nodes."""

import pytest

from repro import ConventionalEngine, Database, DatabaseSchema, DataType, TableSchema
from repro.engine.logical import MaterializedNode, SetOpNode
from repro.engine.metrics import ExecutionMetrics
from repro.engine.physical import Intermediate, PhysicalExecutor
from repro.engine.profiles import EngineProfile, POSTGRESQL


def two_table_db(left_rows, right_rows) -> Database:
    schema = DatabaseSchema(
        [
            TableSchema("l", [("k", DataType.INT), ("a", DataType.STRING)]),
            TableSchema("r", [("k", DataType.INT), ("b", DataType.STRING)]),
        ]
    )
    db = Database(schema)
    for row in left_rows:
        db.insert("l", row)
    for row in right_rows:
        db.insert("r", row)
    return db


JOIN_SQL = "SELECT l.a, r.b FROM l JOIN r ON l.k = r.k ORDER BY l.a, r.b"


class TestJoinAlgorithmEdges:
    def test_block_nested_across_block_boundary(self):
        """More left rows than the block size: all blocks must be visited."""
        left = [(i % 7, f"a{i}") for i in range(25)]
        right = [(k, f"b{k}") for k in range(7)]
        db = two_table_db(left, right)
        small_blocks = EngineProfile(
            name="bnl", join_algorithm="block_nested", block_size=4
        )
        got = ConventionalEngine(db, small_blocks).execute(JOIN_SQL).rows
        want = ConventionalEngine(db, POSTGRESQL).execute(JOIN_SQL).rows
        assert got == want and len(got) == 25

    def test_sort_merge_duplicate_runs(self):
        """Equal-key runs on both sides must produce the full product."""
        left = [(1, "a1"), (1, "a2"), (2, "a3")]
        right = [(1, "b1"), (1, "b2"), (1, "b3"), (2, "b4")]
        db = two_table_db(left, right)
        merge = EngineProfile(name="sm", join_algorithm="sort_merge")
        got = ConventionalEngine(db, merge).execute(JOIN_SQL).rows
        assert len(got) == 2 * 3 + 1

    def test_hash_join_build_side_choice_is_invisible(self):
        """Build side depends on sizes; answers must not."""
        big = [(i % 3, f"a{i}") for i in range(50)]
        small = [(k, f"b{k}") for k in range(3)]
        db_big_left = two_table_db(big, small)
        db_small_left = two_table_db(small, big)
        first = ConventionalEngine(db_big_left).execute(JOIN_SQL).rows
        second = ConventionalEngine(db_small_left).execute(
            "SELECT l.a, r.b FROM l JOIN r ON l.k = r.k ORDER BY l.a, r.b"
        ).rows
        assert len(first) == len(second) == 50

    def test_empty_sides(self):
        for left, right in ([[], [(1, "b")]], [[(1, "a")], []], [[], []]):
            db = two_table_db(left, right)
            assert ConventionalEngine(db).execute(JOIN_SQL).rows == []


class TestOverheadProfiles:
    def test_overhead_does_not_change_answers_or_counts(self):
        db = two_table_db([(1, "a")], [(1, "b")])
        heavy = EngineProfile(name="heavy", join_algorithm="hash", row_overhead=50)
        light = ConventionalEngine(db, POSTGRESQL).execute(JOIN_SQL)
        loaded = ConventionalEngine(db, heavy).execute(JOIN_SQL)
        assert light.rows == loaded.rows
        assert (
            light.metrics.tuples_scanned == loaded.metrics.tuples_scanned == 2
        )


class TestIntermediate:
    def test_layout_cached_and_correct(self):
        intermediate = Intermediate(labels=["x", "y"], rows=[(1, 2)])
        first = intermediate.layout
        assert first == {"x": 0, "y": 1}
        assert intermediate.layout is first  # cached

    def test_materialized_node_passthrough(self):
        db = Database()
        metrics = ExecutionMetrics()
        executor = PhysicalExecutor(db, POSTGRESQL, metrics)
        node = MaterializedNode(labels=["v"], rows=[(1,), (2,)])
        result = executor.run(node)
        assert result.rows == [(1,), (2,)]

    def test_set_op_over_materialized_nodes(self):
        db = Database()
        executor = PhysicalExecutor(db, POSTGRESQL, ExecutionMetrics())
        left = MaterializedNode(labels=["v"], rows=[(1,), (2,), (2,)])
        right = MaterializedNode(labels=["v"], rows=[(2,)])
        union = executor.run(SetOpNode("UNION", left, right))
        assert sorted(union.rows) == [(1,), (2,)]
        except_all = executor.run(SetOpNode("EXCEPT", left, right, all=True))
        assert sorted(except_all.rows) == [(1,), (2,)]
        intersect_all = executor.run(SetOpNode("INTERSECT", left, right, all=True))
        assert intersect_all.rows == [(2,)]
