"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestSelectCore:
    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items == (ast.SelectItem(ast.Star()),)
        assert stmt.from_items == (ast.TableRef("t"),)

    def test_select_columns(self):
        stmt = parse("SELECT a, t.b FROM t")
        assert stmt.items[0].expression == ast.ColumnRef("a")
        assert stmt.items[1].expression == ast.ColumnRef("b", table="t")

    def test_alias_with_as(self):
        stmt = parse("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse("SELECT a FROM t AS u")
        assert stmt.from_items[0] == ast.TableRef("t", "u")

    def test_table_alias_without_as(self):
        stmt = parse("SELECT a FROM t u")
        assert stmt.from_items[0] == ast.TableRef("t", "u")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_select_all_is_not_distinct(self):
        assert not parse("SELECT ALL a FROM t").distinct

    def test_multiple_tables(self):
        stmt = parse("SELECT a FROM t, u, v")
        assert len(stmt.from_items) == 3

    def test_trailing_semicolon(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra nonsense nonsense")

    def test_missing_from_table(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM")

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expression == ast.Star(table="t")


class TestJoins:
    def test_inner_join_on(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.x = u.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.Join) and join.kind == "INNER"
        assert join.condition == ast.BinaryOp(
            "=", ast.ColumnRef("x", "t"), ast.ColumnRef("y", "u")
        )

    def test_explicit_inner(self):
        join = parse("SELECT a FROM t INNER JOIN u ON t.x = u.y").from_items[0]
        assert join.kind == "INNER"

    def test_left_join(self):
        join = parse("SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y").from_items[0]
        assert join.kind == "LEFT"

    def test_cross_join(self):
        join = parse("SELECT a FROM t CROSS JOIN u").from_items[0]
        assert join.kind == "CROSS" and join.condition is None

    def test_chained_joins_left_assoc(self):
        join = parse(
            "SELECT a FROM t JOIN u ON t.x = u.x JOIN v ON u.y = v.y"
        ).from_items[0]
        assert isinstance(join.left, ast.Join)
        assert isinstance(join.right, ast.TableRef) and join.right.name == "v"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t JOIN u")


class TestWhereClauses:
    def test_comparison_normalises_ne(self):
        stmt = parse("SELECT a FROM t WHERE a != 1")
        assert stmt.where.op == "<>"

    def test_and_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_not_precedence(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1 AND b = 2")
        assert stmt.where.op == "AND"
        assert isinstance(stmt.where.left, ast.UnaryOp)

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert stmt.where == ast.Between(
            ast.ColumnRef("a"), ast.Literal(1), ast.Literal(5)
        )

    def test_not_between(self):
        assert parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5").where.negated

    def test_between_binds_tighter_than_and(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b = 2")
        assert stmt.where.op == "AND"
        assert isinstance(stmt.where.left, ast.Between)

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert stmt.where == ast.InList(
            ast.ColumnRef("a"),
            (ast.Literal(1), ast.Literal(2), ast.Literal(3)),
        )

    def test_not_in(self):
        assert parse("SELECT a FROM t WHERE a NOT IN (1)").where.negated

    def test_like(self):
        stmt = parse("SELECT a FROM t WHERE a LIKE 'x%'")
        assert isinstance(stmt.where, ast.Like)

    def test_is_null(self):
        stmt = parse("SELECT a FROM t WHERE a IS NULL")
        assert stmt.where == ast.IsNull(ast.ColumnRef("a"))

    def test_is_not_null(self):
        assert parse("SELECT a FROM t WHERE a IS NOT NULL").where.negated


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_unary_minus_folds_literal(self):
        assert parse_expression("-5") == ast.Literal(-5)

    def test_unary_minus_on_column(self):
        expr = parse_expression("-a")
        assert expr == ast.UnaryOp("-", ast.ColumnRef("a"))

    def test_unary_plus_dropped(self):
        assert parse_expression("+5") == ast.Literal(5)

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)
        assert parse_expression("NULL") == ast.Literal(None)

    def test_string_literal(self):
        assert parse_expression("'abc'") == ast.Literal("abc")

    def test_concat(self):
        expr = parse_expression("a || b")
        assert expr.op == "||"

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse("SELECT FROM t")
        assert "expected an expression" in str(exc.value)


class TestAggregatesGrouping:
    def test_count_star(self):
        expr = parse("SELECT COUNT(*) FROM t").items[0].expression
        assert expr == ast.FunctionCall("COUNT", (ast.Star(),))

    def test_count_distinct(self):
        expr = parse("SELECT COUNT(DISTINCT a) FROM t").items[0].expression
        assert expr.distinct

    def test_sum_avg_min_max(self):
        stmt = parse("SELECT SUM(a), AVG(a), MIN(a), MAX(a) FROM t")
        names = [item.expression.name for item in stmt.items]
        assert names == ["SUM", "AVG", "MIN", "MAX"]

    def test_group_by_multiple(self):
        stmt = parse("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert stmt.having is not None

    def test_order_by_asc_desc(self):
        stmt = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_limit_offset(self):
        stmt = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10 and stmt.offset == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT x")


class TestSetOperations:
    def test_union(self):
        stmt = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(stmt, ast.SetOperation) and stmt.op == "UNION"
        assert not stmt.all

    def test_union_all(self):
        assert parse("SELECT a FROM t UNION ALL SELECT b FROM u").all

    def test_intersect_except(self):
        assert parse("SELECT a FROM t INTERSECT SELECT a FROM u").op == "INTERSECT"
        assert parse("SELECT a FROM t EXCEPT SELECT a FROM u").op == "EXCEPT"

    def test_left_associative_chain(self):
        stmt = parse("SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM v")
        assert stmt.op == "EXCEPT" and stmt.left.op == "UNION"

    def test_parenthesised_block(self):
        stmt = parse("(SELECT a FROM t) UNION SELECT a FROM u")
        assert stmt.op == "UNION"
