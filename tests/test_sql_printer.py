"""Printer tests: fixed cases plus a hypothesis parse/print round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast
from repro.sql.parser import parse, parse_expression
from repro.sql.printer import expression_to_sql, to_sql

# --------------------------------------------------------------------------- #
# fixed cases
# --------------------------------------------------------------------------- #


class TestFixedPrinting:
    def test_simple_select(self):
        sql = "SELECT a FROM t"
        assert to_sql(parse(sql)) == sql

    def test_full_block(self):
        sql = (
            "SELECT a.x, COUNT(*) AS cnt FROM t AS a WHERE a.y BETWEEN 1 AND 5 "
            "GROUP BY a.x HAVING COUNT(*) > 2 ORDER BY cnt DESC LIMIT 3"
        )
        assert to_sql(parse(sql)) == sql

    def test_string_escaping(self):
        expr = ast.Literal("it's")
        assert expression_to_sql(expr) == "'it''s'"

    def test_null_true_false(self):
        assert expression_to_sql(ast.Literal(None)) == "NULL"
        assert expression_to_sql(ast.Literal(True)) == "TRUE"
        assert expression_to_sql(ast.Literal(False)) == "FALSE"

    def test_precedence_parens_kept(self):
        sql = "SELECT (a + b) * c FROM t"
        printed = to_sql(parse(sql))
        assert "(a + b) * c" in printed

    def test_or_inside_and_parenthesised(self):
        stmt = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        printed = to_sql(stmt)
        assert parse(printed) == stmt

    def test_join_printing(self):
        sql = "SELECT a FROM t JOIN u ON t.x = u.y"
        assert to_sql(parse(sql)) == sql

    def test_set_op_printing(self):
        sql = "SELECT a FROM t UNION ALL SELECT a FROM u"
        assert to_sql(parse(sql)) == sql

    def test_not_in_printing(self):
        sql = "SELECT a FROM t WHERE a NOT IN (1, 2)"
        assert to_sql(parse(sql)) == sql

    def test_is_not_null_printing(self):
        sql = "SELECT a FROM t WHERE a IS NOT NULL"
        assert to_sql(parse(sql)) == sql


# --------------------------------------------------------------------------- #
# hypothesis round-trip: parse(to_sql(ast)) == ast
# --------------------------------------------------------------------------- #

_identifiers = st.sampled_from(["a", "b", "c", "x1", "col_2", "t", "u"])
_tables = st.sampled_from(["t", "u", "v"])

_literals = st.one_of(
    st.integers(-1000, 1000).map(ast.Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32)
    .filter(lambda f: f >= 0)
    .map(ast.Literal),
    st.text(alphabet="abc '%_", max_size=8).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
)

_columns = st.builds(
    ast.ColumnRef,
    name=_identifiers,
    table=st.one_of(st.none(), _tables),
)

_atoms = st.one_of(_literals, _columns)


def _expressions(depth: int):
    if depth == 0:
        return _atoms
    sub = _expressions(depth - 1)
    return st.one_of(
        _atoms,
        st.builds(
            ast.BinaryOp,
            op=st.sampled_from(["+", "-", "*", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"]),
            left=sub,
            right=sub,
        ),
        st.builds(ast.UnaryOp, op=st.just("NOT"), operand=sub),
        st.builds(
            ast.InList,
            operand=sub,
            items=st.lists(_literals, min_size=1, max_size=3).map(tuple),
            negated=st.booleans(),
        ),
        st.builds(
            ast.Between,
            operand=sub,
            low=_atoms,
            high=_atoms,
            negated=st.booleans(),
        ),
        st.builds(ast.IsNull, operand=sub, negated=st.booleans()),
        st.builds(
            ast.Like,
            operand=sub,
            pattern=st.text(alphabet="ab%_", max_size=5).map(ast.Literal),
            negated=st.booleans(),
        ),
    )


_select_statements = st.builds(
    ast.SelectStatement,
    items=st.lists(
        st.builds(
            ast.SelectItem,
            expression=_expressions(1),
            alias=st.one_of(st.none(), st.sampled_from(["o1", "o2"])),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    from_items=st.lists(
        st.builds(
            ast.TableRef,
            name=_tables,
            alias=st.one_of(st.none(), st.sampled_from(["r", "s"])),
        ),
        min_size=1,
        max_size=2,
    ).map(tuple),
    where=st.one_of(st.none(), _expressions(2)),
    distinct=st.booleans(),
    limit=st.one_of(st.none(), st.integers(0, 100)),
)


class TestRoundTripProperty:
    @settings(max_examples=300, deadline=None)
    @given(expr=_expressions(3))
    def test_expression_round_trip(self, expr):
        """parse(print(e)) == e for arbitrary expression trees."""
        printed = expression_to_sql(expr)
        assert parse_expression(printed) == expr

    @settings(max_examples=150, deadline=None)
    @given(stmt=_select_statements)
    def test_statement_round_trip(self, stmt):
        printed = to_sql(stmt)
        assert parse(printed) == stmt
